use super::*;
use gs_scene::{SceneConfig, SceneKind};
use gs_vq::{GaussianQuantizer, VqConfig};

fn scene_cloud() -> (GaussianCloud, VoxelGrid) {
    let scene = SceneKind::Lego.build(&SceneConfig::tiny());
    let grid = VoxelGrid::build(&scene.trained, scene.voxel_size);
    (scene.trained, grid)
}

#[test]
fn layout_mirrors_grid() {
    let (cloud, grid) = scene_cloud();
    let store = VoxelStore::from_cloud(&cloud, &grid);
    assert_eq!(store.len(), cloud.len());
    assert_eq!(store.voxel_count(), grid.voxel_count());
    for v in 0..grid.voxel_count() as u32 {
        assert_eq!(store.ids_of(v), grid.gaussians_of(v));
        let slots = store.slots_of(v);
        assert_eq!(
            (slots.end - slots.start) as usize,
            grid.gaussians_of(v).len()
        );
    }
    assert_eq!(store.coarse_column_bytes(), cloud.len() as u64 * 16);
    assert_eq!(store.fine_column_bytes(), cloud.len() as u64 * 220);
    assert!(!store.is_paged());
    assert_eq!(store.page_faults(), 0);
    assert_eq!(store.page_config(), None);
    assert_eq!(store.fault_snapshot(), StoreFaultSnapshot::default());
}

#[test]
fn raw_fetch_is_bit_exact() {
    let (cloud, grid) = scene_cloud();
    let store = VoxelStore::from_cloud(&cloud, &grid);
    let mut ledger = TrafficLedger::new();
    for v in 0..store.voxel_count() as u32 {
        let coarse: Vec<_> = store.fetch_coarse(v, &mut ledger).collect();
        for (slot, pos, s_max) in coarse {
            let g = &cloud.as_slice()[store.id_of(slot) as usize];
            assert_eq!(pos, g.pos);
            assert_eq!(s_max, g.max_scale());
            assert_eq!(store.try_coarse_of(slot).unwrap(), (g.pos, g.max_scale()));
            assert_eq!(&store.fetch_fine(slot, &mut ledger), g);
        }
    }
    let n = cloud.len() as u64;
    assert_eq!(ledger.get(Stage::VoxelCoarse, Direction::Read), n * 16);
    // try_coarse_of is unmetered: the fine demand is exactly one record
    // per slot.
    assert_eq!(ledger.get(Stage::VoxelFine, Direction::Read), n * 220);
}

#[test]
fn vq_fetch_matches_quantizer_decode_bit_exactly() {
    let (cloud, grid) = scene_cloud();
    let quant = GaussianQuantizer::train(&cloud, &VqConfig::tiny());
    let store = VoxelStore::from_quantized(&quant, &grid);
    assert!(store.is_vq());
    assert_eq!(
        store.fine_bytes_per_gaussian(),
        quant.fine_bytes_per_gaussian()
    );
    let mut ledger = TrafficLedger::new();
    for slot in 0..store.len() as u32 {
        let gi = store.id_of(slot) as usize;
        assert_eq!(store.fetch_fine(slot, &mut ledger), quant.decode_one(gi));
    }
    assert_eq!(
        ledger.get(Stage::VoxelFine, Direction::Read),
        store.len() as u64 * store.fine_bytes_per_gaussian()
    );
}

#[test]
fn coarse_metering_is_whole_voxel_bursts() {
    let (cloud, grid) = scene_cloud();
    let store = VoxelStore::from_cloud(&cloud, &grid);
    let mut ledger = TrafficLedger::new();
    let v = 0u32;
    // Dropping the iterator without consuming it still meters the
    // burst: the accelerator streams the whole voxel regardless.
    let _ = store.fetch_coarse(v, &mut ledger);
    assert_eq!(
        ledger.get(Stage::VoxelCoarse, Direction::Read),
        grid.gaussians_of(v).len() as u64 * 16
    );
}

#[test]
fn paged_twin_is_bit_exact_raw() {
    let (cloud, grid) = scene_cloud();
    let store = VoxelStore::from_cloud(&cloud, &grid);
    let paged = store.paged_twin(PageConfig {
        slots_per_page: 7,
        ..PageConfig::default()
    });
    assert!(paged.is_paged());
    assert!(!paged.is_vq());
    assert!(
        paged.page_config().unwrap().verify_checksums,
        "v2 images verify by default"
    );
    assert_eq!(paged.len(), store.len());
    assert_eq!(paged.voxel_count(), store.voxel_count());
    let mut la = TrafficLedger::new();
    let mut lb = TrafficLedger::new();
    for v in 0..store.voxel_count() as u32 {
        assert_eq!(paged.ids_of(v), store.ids_of(v));
        let a: Vec<_> = store.fetch_coarse(v, &mut la).collect();
        let b: Vec<_> = paged.fetch_coarse(v, &mut lb).collect();
        assert_eq!(a, b);
    }
    for slot in 0..store.len() as u32 {
        assert_eq!(
            store.fetch_fine(slot, &mut la),
            paged.fetch_fine(slot, &mut lb)
        );
    }
    assert_eq!(la, lb, "paged metering must be identical");
    assert!(paged.page_faults() > 0);
    // Fault-free run: nothing retried, nothing dead, nothing injected.
    assert_eq!(paged.fault_snapshot(), StoreFaultSnapshot::default());
}

#[test]
fn paged_twin_is_bit_exact_vq_and_respects_budget() {
    let (cloud, grid) = scene_cloud();
    let quant = GaussianQuantizer::train(&cloud, &VqConfig::tiny());
    let store = VoxelStore::from_quantized(&quant, &grid);
    let budget = PageConfig {
        slots_per_page: 8,
        max_resident_pages: 2,
        ..PageConfig::default()
    };
    let paged = store.paged_twin(budget);
    assert!(paged.is_vq());
    let mut l = TrafficLedger::new();
    for slot in 0..store.len() as u32 {
        assert_eq!(
            paged.fetch_fine(slot, &mut l),
            quant.decode_one(paged.id_of(slot) as usize)
        );
    }
    // Two columns × two pages × 8 slots each is the residency ceiling.
    let per_page = 8 * (COARSE_BYTES as u64).max(paged.fine_bytes_per_gaussian());
    assert!(paged.resident_column_bytes() <= 4 * per_page);
    // The budget forces evictions: more faults than distinct pages.
    let distinct = 2 * (store.len() as u64).div_ceil(8);
    assert!(
        paged.page_faults() >= distinct,
        "faults {} < distinct pages {}",
        paged.page_faults(),
        distinct
    );
}

#[test]
fn v1_images_remain_readable_without_verification() {
    let (cloud, grid) = scene_cloud();
    let store = VoxelStore::from_cloud(&cloud, &grid);
    let v1 = VoxelStore::open_paged_bytes(store.to_scene_bytes_v1(), PageConfig::default())
        .expect("v1 image must stay readable");
    // Verification was requested (default) but the image has no tables:
    // the effective config flags it off.
    assert!(!v1.page_config().unwrap().verify_checksums);
    let mut la = TrafficLedger::new();
    let mut lb = TrafficLedger::new();
    for slot in 0..store.len() as u32 {
        assert_eq!(
            store.fetch_fine(slot, &mut la),
            v1.fetch_fine(slot, &mut lb)
        );
    }
    assert_eq!(la, lb);
}

#[test]
fn corrupt_column_byte_surfaces_as_corrupt_page() {
    let (cloud, grid) = scene_cloud();
    let store = VoxelStore::from_cloud(&cloud, &grid);
    let mut image = store.to_scene_bytes();
    let n = store.len();
    // Flip one byte in the middle of the coarse column (the columns sit at
    // the very end of the image: coarse then fine).
    let coarse_off = image.len() - n * FINE_BYTES_RAW - n * COARSE_BYTES;
    let at = coarse_off + (n / 2) * COARSE_BYTES;
    image[at] ^= 0x40;
    // Metadata is untouched, so the image still opens…
    let paged = VoxelStore::open_paged_bytes(image.clone(), PageConfig::default())
        .expect("column corruption is detected at fetch, not open");
    // …but fetching the affected voxel reports the corrupt chunk.
    let mut l = TrafficLedger::new();
    let mut saw_corrupt = false;
    for v in 0..paged.voxel_count() as u32 {
        match paged.try_fetch_coarse(v, &mut l).map(|it| it.count()) {
            Ok(_) => {}
            Err(StoreError::CorruptPage { column, .. }) => {
                assert_eq!(column, ColumnKind::Coarse);
                saw_corrupt = true;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(saw_corrupt, "the corrupted chunk was never touched");
    // Persistent corruption burns the retry budget each time.
    assert!(paged.fault_snapshot().retries > 0);
    // With verification off the corruption goes undetected — but must
    // still never panic (it decodes to a wrong Gaussian, by contract).
    let blind = VoxelStore::open_paged_bytes(
        image,
        PageConfig {
            verify_checksums: false,
            ..PageConfig::default()
        },
    )
    .expect("open");
    for v in 0..blind.voxel_count() as u32 {
        let _ = blind.try_fetch_coarse(v, &mut l).map(|it| it.count());
    }
}

#[test]
fn metadata_corruption_is_rejected_at_open() {
    let (cloud, grid) = scene_cloud();
    let store = VoxelStore::from_cloud(&cloud, &grid);
    let good = store.to_scene_bytes();
    // A flipped byte inside the range table breaks the metadata CRC.
    let mut evil = good.clone();
    evil[30] ^= 0x01;
    assert!(VoxelStore::open_paged_bytes(evil, PageConfig::default()).is_err());
}

#[test]
fn transient_faults_recover_bit_exactly_and_count_retries() {
    let (cloud, grid) = scene_cloud();
    let store = VoxelStore::from_cloud(&cloud, &grid);
    let paged = store
        .paged_twin_with_faults(
            PageConfig {
                slots_per_page: 8,
                max_read_attempts: 8,
                ..PageConfig::default()
            },
            FaultPolicy::transient(0xDECAF, 150),
        )
        .expect("open with faults");
    let mut la = TrafficLedger::new();
    let mut lb = TrafficLedger::new();
    for v in 0..store.voxel_count() as u32 {
        let a: Vec<_> = store.fetch_coarse(v, &mut la).collect();
        let b: Vec<_> = paged
            .try_fetch_coarse(v, &mut lb)
            .expect("transient faults must recover")
            .collect();
        assert_eq!(a, b);
    }
    for slot in 0..store.len() as u32 {
        assert_eq!(
            store.fetch_fine(slot, &mut la),
            paged.try_fetch_fine(slot, &mut lb).expect("recover")
        );
    }
    assert_eq!(la, lb, "recovered fetches meter identically");
    let snap = paged.fault_snapshot();
    assert!(snap.injected.transient > 0, "no faults were injected");
    // Every injected (non-permanent) fault is exactly one retry.
    assert_eq!(
        snap.retries,
        snap.injected.total() - snap.injected.permanent
    );
    assert_eq!(snap.dead_pages, 0);
}

#[test]
fn permanent_faults_mark_pages_dead_and_stay_dead() {
    let (cloud, grid) = scene_cloud();
    let store = VoxelStore::from_cloud(&cloud, &grid);
    let paged = store
        .paged_twin_with_faults(
            PageConfig {
                slots_per_page: 4,
                ..PageConfig::default()
            },
            FaultPolicy {
                seed: 7,
                permanent_per_mille: 300,
                ..FaultPolicy::default()
            },
        )
        .expect("open with faults");
    let mut l = TrafficLedger::new();
    let mut lost = Vec::new();
    for v in 0..paged.voxel_count() as u32 {
        if let Err(e) = paged.try_fetch_coarse(v, &mut l).map(|it| it.count()) {
            match e {
                StoreError::PageLost { .. } => lost.push(v),
                other => panic!("unexpected error: {other}"),
            }
        }
    }
    assert!(!lost.is_empty(), "no pages went permanently dark at 30%");
    let snap = paged.fault_snapshot();
    assert!(snap.dead_pages > 0);
    // Dead pages fail fast on re-fetch without new injector draws.
    let before = paged.fault_snapshot().injected;
    for &v in &lost {
        assert!(matches!(
            paged.try_fetch_coarse(v, &mut l).map(|it| it.count()),
            Err(StoreError::PageLost { .. })
        ));
    }
    assert_eq!(paged.fault_snapshot().injected, before);
}

#[test]
fn scene_file_round_trips_on_disk() {
    let (cloud, grid) = scene_cloud();
    let store = VoxelStore::from_cloud(&cloud, &grid);
    let path = std::env::temp_dir().join("gsvs_store_roundtrip.gsvs");
    store.write_scene_file(&path).expect("write scene file");
    let paged = VoxelStore::open_paged_file(&path, PageConfig::default()).expect("open");
    let mut la = TrafficLedger::new();
    let mut lb = TrafficLedger::new();
    for slot in 0..store.len() as u32 {
        assert_eq!(
            store.fetch_fine(slot, &mut la),
            paged.fetch_fine(slot, &mut lb)
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn write_scene_file_leaves_no_temp_litter() {
    let (cloud, grid) = scene_cloud();
    let store = VoxelStore::from_cloud(&cloud, &grid);
    let dir = std::env::temp_dir().join("gsvs_atomic_write_test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("scene.gsvs");
    store.write_scene_file(&path).expect("first write");
    // Overwriting an existing image is atomic: the destination always
    // holds either the old or the new complete image.
    store.write_scene_file(&path).expect("overwrite");
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .expect("read_dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".tmp"))
        .collect();
    assert!(
        leftovers.is_empty(),
        "temp files left behind: {leftovers:?}"
    );
    VoxelStore::open_paged_file(&path, PageConfig::default()).expect("reopen");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rewriting_a_file_paged_store_over_its_own_backing_is_safe() {
    let (cloud, grid) = scene_cloud();
    let store = VoxelStore::from_cloud(&cloud, &grid);
    let path = std::env::temp_dir().join("gsvs_rewrite_self.gsvs");
    store.write_scene_file(&path).expect("initial write");
    let paged = VoxelStore::open_paged_file(
        &path,
        PageConfig {
            slots_per_page: 8,
            max_resident_pages: 2,
            ..PageConfig::default()
        },
    )
    .expect("open");
    let mut l = TrafficLedger::new();
    let g0 = paged.fetch_fine(0, &mut l);
    // Re-writing over the store's own backing file must serialize
    // (paging everything in) before touching the destination.
    paged.write_scene_file(&path).expect("rewrite over self");
    assert_eq!(paged.fetch_fine(0, &mut l), g0);
    let reopened = VoxelStore::open_paged_file(&path, PageConfig::default()).expect("reopen");
    assert_eq!(reopened.fetch_fine(0, &mut l), g0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn open_rejects_garbage() {
    let err = VoxelStore::open_paged_bytes(vec![0u8; 16], PageConfig::default());
    assert!(err.is_err());
    let err = VoxelStore::open_paged_bytes(Vec::new(), PageConfig::default());
    assert!(err.is_err());
}

#[test]
fn open_rejects_hostile_headers_without_allocating() {
    let (cloud, grid) = scene_cloud();
    let good = VoxelStore::from_cloud(&cloud, &grid).to_scene_bytes();
    // Huge n_voxels: must fail the length check, not allocate ~34 GB.
    let mut evil = good.clone();
    evil[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(VoxelStore::open_paged_bytes(evil, PageConfig::default()).is_err());
    // A slot range pointing past the slot column must fail at open, not
    // out-of-bounds at render time (the v2 range table starts at byte 28;
    // this clobbers voxel 0's end bound).
    let mut evil = good.clone();
    evil[32..36].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(VoxelStore::open_paged_bytes(evil, PageConfig::default()).is_err());
    // Truncated columns fail at open too.
    let mut evil = good.clone();
    evil.truncate(good.len() - 100);
    assert!(VoxelStore::open_paged_bytes(evil, PageConfig::default()).is_err());
    // Trailing garbage violates the strict framing check.
    let mut evil = good.clone();
    evil.extend_from_slice(&[0u8; 3]);
    assert!(VoxelStore::open_paged_bytes(evil, PageConfig::default()).is_err());
    // Unknown flag bits reject (forward compatibility).
    let mut evil = good.clone();
    evil[8] |= 0x80;
    assert!(VoxelStore::open_paged_bytes(evil, PageConfig::default()).is_err());
}

#[test]
fn clone_of_paged_store_starts_cold_but_reads_identically() {
    let (cloud, grid) = scene_cloud();
    let store = VoxelStore::from_cloud(&cloud, &grid);
    let paged = store.paged_twin(PageConfig::default());
    let mut l = TrafficLedger::new();
    let g0 = paged.fetch_fine(0, &mut l);
    let cold = paged.clone();
    assert_eq!(cold.page_faults(), 0, "clones share no page state");
    assert_eq!(cold.fetch_fine(0, &mut l), g0);
}

// --- LOD tiers (scene image v3) ------------------------------------------

/// A two-tier ladder exercising SH truncation, pruning and (for VQ)
/// codebook shrinking.
fn tier_ladder() -> [TierSpec; 2] {
    [
        TierSpec {
            sh_degree: 1,
            keep_permille: 1000,
            codebook_shift: 1,
        },
        TierSpec {
            sh_degree: 0,
            keep_permille: 500,
            codebook_shift: 2,
        },
    ]
}

#[test]
fn tiered_raw_store_round_trips_through_v3() {
    let (cloud, grid) = scene_cloud();
    let mut store = VoxelStore::from_cloud(&cloud, &grid);
    store.build_tiers(&cloud, None, &tier_ladder(), None);
    assert_eq!(store.tier_count(), 2);
    assert_eq!(store.tier_record_bytes(0), 76); // SH degree 1
    assert_eq!(store.tier_record_bytes(1), 40); // SH degree 0
                                                // keep_permille prunes globally: tier 1 keeps ceil(n/2) slots.
    let n = store.len();
    let t1_slots: usize = (0..store.voxel_count() as u32)
        .map(|v| store.tier_slots_of(1, v).len())
        .sum();
    assert_eq!(t1_slots, n.div_ceil(2));
    let image = store.to_scene_bytes();
    assert_eq!(u32::from_le_bytes(image[4..8].try_into().unwrap()), 3);
    let paged = VoxelStore::open_paged_bytes(
        image,
        PageConfig {
            slots_per_page: 7,
            ..PageConfig::default()
        },
    )
    .unwrap();
    assert_eq!(paged.tier_count(), 2);
    for t in 0..2 {
        assert_eq!(paged.tier_spec(t), store.tier_spec(t));
        assert_eq!(paged.tier_record_bytes(t), store.tier_record_bytes(t));
        let (mut a, mut b) = (TrafficLedger::new(), TrafficLedger::new());
        for v in 0..store.voxel_count() as u32 {
            assert_eq!(paged.tier_slots_of(t, v), store.tier_slots_of(t, v));
            for ts in store.tier_slots_of(t, v) {
                assert_eq!(paged.tier_global_slot(t, ts), store.tier_global_slot(t, ts));
                assert_eq!(
                    paged.try_fetch_tier_fine(t, ts, &mut a).unwrap(),
                    store.try_fetch_tier_fine(t, ts, &mut b).unwrap()
                );
            }
        }
        assert_eq!(a, b, "paged tier fetches meter identically");
        assert_eq!(
            a.tier_demand(t + 1),
            store.tier_record_bytes(t)
                * (0..store.voxel_count() as u32)
                    .map(|v| store.tier_slots_of(t, v).len() as u64)
                    .sum::<u64>()
        );
    }
    // Tier decodes equal the SH-truncated source for unpruned slots.
    for ts in store.tier_slots_of(0, 3) {
        let slot = store.tier_global_slot(0, ts);
        let g = &cloud.as_slice()[store.id_of(slot) as usize];
        let mut l = TrafficLedger::new();
        let dec = store.try_fetch_tier_fine(0, ts, &mut l).unwrap();
        assert_eq!(dec, gs_vq::tier::truncate_sh(g.clone(), 1));
    }
}

#[test]
fn tiered_vq_store_round_trips_through_v3() {
    let (cloud, grid) = scene_cloud();
    let cfg = VqConfig::tiny();
    let quant = GaussianQuantizer::train(&cloud, &cfg);
    let mut store = VoxelStore::from_quantized(&quant, &grid);
    store.build_tiers(&cloud, Some(&cfg), &tier_ladder(), None);
    assert_eq!(store.tier_count(), 2);
    // Tier records are strictly narrower than full-quality VQ records.
    assert!(store.tier_record_bytes(0) < store.fine_bytes_per_gaussian());
    assert!(store.tier_record_bytes(1) < store.tier_record_bytes(0));
    let paged = store
        .try_paged_twin(PageConfig {
            slots_per_page: 5,
            max_resident_pages: 3,
            ..PageConfig::default()
        })
        .unwrap();
    assert_eq!(paged.tier_count(), 2);
    for t in 0..2 {
        let (mut a, mut b) = (TrafficLedger::new(), TrafficLedger::new());
        for v in 0..store.voxel_count() as u32 {
            for ts in store.tier_slots_of(t, v) {
                assert_eq!(
                    paged.try_fetch_tier_fine(t, ts, &mut a).unwrap(),
                    store.try_fetch_tier_fine(t, ts, &mut b).unwrap()
                );
            }
        }
        assert_eq!(a, b);
    }
    // Tier columns page independently: the eviction budget above forces
    // re-faults, and the dead-page maps exist per tier.
    assert!(paged.page_faults() > 0);
    assert!(!paged.dead_page_map(ColumnKind::Tier(0)).is_empty());
    assert!(!paged.dead_page_map(ColumnKind::Tier(1)).is_empty());
    assert!(paged.dead_page_map(ColumnKind::Tier(0)).iter().all(|&d| !d));
}

#[test]
fn tierless_v3_image_matches_v2_fetches() {
    let (cloud, grid) = scene_cloud();
    let store = VoxelStore::from_cloud(&cloud, &grid);
    let v2 = store.to_scene_bytes();
    let v3 = store.to_scene_bytes_v3();
    assert_eq!(u32::from_le_bytes(v2[4..8].try_into().unwrap()), 2);
    assert_eq!(u32::from_le_bytes(v3[4..8].try_into().unwrap()), 3);
    let p2 = VoxelStore::open_paged_bytes(v2, PageConfig::default()).unwrap();
    let p3 = VoxelStore::open_paged_bytes(v3, PageConfig::default()).unwrap();
    assert_eq!(p3.tier_count(), 0);
    let (mut a, mut b) = (TrafficLedger::new(), TrafficLedger::new());
    for slot in 0..store.len() as u32 {
        assert_eq!(p2.fetch_fine(slot, &mut a), p3.fetch_fine(slot, &mut b));
    }
    assert_eq!(a, b);
}

#[test]
fn v3_tier_corruption_is_detected_per_tier_page() {
    let (cloud, grid) = scene_cloud();
    let mut store = VoxelStore::from_cloud(&cloud, &grid);
    store.build_tiers(&cloud, None, &tier_ladder(), None);
    let image = store.to_scene_bytes();
    // Flip one byte in the *last* tier's column (the image tail).
    let mut evil = image.clone();
    let at = evil.len() - 10;
    evil[at] ^= 0xFF;
    let paged = VoxelStore::open_paged_bytes(evil, PageConfig::default()).unwrap();
    let last = paged.tier_count() - 1;
    let n_tier_slots: u32 = (0..paged.voxel_count() as u32)
        .map(|v| paged.tier_slots_of(last, v).len() as u32)
        .sum();
    let mut l = TrafficLedger::new();
    let err = (0..n_tier_slots)
        .find_map(|ts| paged.try_fetch_tier_fine(last, ts, &mut l).err())
        .expect("a corrupt tier page must fail its checksum");
    assert!(
        matches!(err, StoreError::CorruptPage { column: ColumnKind::Tier(t), .. } if t as usize == last),
        "unexpected error: {err}"
    );
    // Tier 0 and the other tier still fetch fine.
    assert!(paged.try_fetch_fine(0, &mut l).is_ok());
    assert!(paged.try_fetch_tier_fine(0, 0, &mut l).is_ok());
}

#[test]
fn importance_scores_steer_tier_pruning() {
    let (cloud, grid) = scene_cloud();
    let mut by_imp = VoxelStore::from_cloud(&cloud, &grid);
    // Rank Gaussian ids by descending id: the kept half is the upper ids.
    let imp: Vec<f64> = (0..cloud.len()).map(|i| i as f64).collect();
    by_imp.build_tiers(
        &cloud,
        None,
        &[TierSpec {
            sh_degree: 0,
            keep_permille: 500,
            codebook_shift: 0,
        }],
        Some(&imp),
    );
    let kept: Vec<u32> = (0..by_imp.voxel_count() as u32)
        .flat_map(|v| {
            by_imp
                .tier_slots_of(0, v)
                .map(|ts| by_imp.id_of(by_imp.tier_global_slot(0, ts)))
                .collect::<Vec<_>>()
        })
        .collect();
    assert_eq!(kept.len(), cloud.len().div_ceil(2));
    let cutoff = cloud.len() as u32 - kept.len() as u32;
    assert!(
        kept.iter().all(|&id| id >= cutoff),
        "importance pruning must keep the top-ranked ids"
    );
}
