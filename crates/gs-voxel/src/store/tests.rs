use super::*;
use gs_scene::{SceneConfig, SceneKind};
use gs_vq::{GaussianQuantizer, VqConfig};

fn scene_cloud() -> (GaussianCloud, VoxelGrid) {
    let scene = SceneKind::Lego.build(&SceneConfig::tiny());
    let grid = VoxelGrid::build(&scene.trained, scene.voxel_size);
    (scene.trained, grid)
}

#[test]
fn layout_mirrors_grid() {
    let (cloud, grid) = scene_cloud();
    let store = VoxelStore::from_cloud(&cloud, &grid);
    assert_eq!(store.len(), cloud.len());
    assert_eq!(store.voxel_count(), grid.voxel_count());
    for v in 0..grid.voxel_count() as u32 {
        assert_eq!(store.ids_of(v), grid.gaussians_of(v));
        let slots = store.slots_of(v);
        assert_eq!(
            (slots.end - slots.start) as usize,
            grid.gaussians_of(v).len()
        );
    }
    assert_eq!(store.coarse_column_bytes(), cloud.len() as u64 * 16);
    assert_eq!(store.fine_column_bytes(), cloud.len() as u64 * 220);
    assert!(!store.is_paged());
    assert_eq!(store.page_faults(), 0);
    assert_eq!(store.page_config(), None);
    assert_eq!(store.fault_snapshot(), StoreFaultSnapshot::default());
}

#[test]
fn raw_fetch_is_bit_exact() {
    let (cloud, grid) = scene_cloud();
    let store = VoxelStore::from_cloud(&cloud, &grid);
    let mut ledger = TrafficLedger::new();
    for v in 0..store.voxel_count() as u32 {
        let coarse: Vec<_> = store.fetch_coarse(v, &mut ledger).collect();
        for (slot, pos, s_max) in coarse {
            let g = &cloud.as_slice()[store.id_of(slot) as usize];
            assert_eq!(pos, g.pos);
            assert_eq!(s_max, g.max_scale());
            assert_eq!(store.try_coarse_of(slot).unwrap(), (g.pos, g.max_scale()));
            assert_eq!(&store.fetch_fine(slot, &mut ledger), g);
        }
    }
    let n = cloud.len() as u64;
    assert_eq!(ledger.get(Stage::VoxelCoarse, Direction::Read), n * 16);
    // try_coarse_of is unmetered: the fine demand is exactly one record
    // per slot.
    assert_eq!(ledger.get(Stage::VoxelFine, Direction::Read), n * 220);
}

#[test]
fn vq_fetch_matches_quantizer_decode_bit_exactly() {
    let (cloud, grid) = scene_cloud();
    let quant = GaussianQuantizer::train(&cloud, &VqConfig::tiny());
    let store = VoxelStore::from_quantized(&quant, &grid);
    assert!(store.is_vq());
    assert_eq!(
        store.fine_bytes_per_gaussian(),
        quant.fine_bytes_per_gaussian()
    );
    let mut ledger = TrafficLedger::new();
    for slot in 0..store.len() as u32 {
        let gi = store.id_of(slot) as usize;
        assert_eq!(store.fetch_fine(slot, &mut ledger), quant.decode_one(gi));
    }
    assert_eq!(
        ledger.get(Stage::VoxelFine, Direction::Read),
        store.len() as u64 * store.fine_bytes_per_gaussian()
    );
}

#[test]
fn coarse_metering_is_whole_voxel_bursts() {
    let (cloud, grid) = scene_cloud();
    let store = VoxelStore::from_cloud(&cloud, &grid);
    let mut ledger = TrafficLedger::new();
    let v = 0u32;
    // Dropping the iterator without consuming it still meters the
    // burst: the accelerator streams the whole voxel regardless.
    let _ = store.fetch_coarse(v, &mut ledger);
    assert_eq!(
        ledger.get(Stage::VoxelCoarse, Direction::Read),
        grid.gaussians_of(v).len() as u64 * 16
    );
}

#[test]
fn paged_twin_is_bit_exact_raw() {
    let (cloud, grid) = scene_cloud();
    let store = VoxelStore::from_cloud(&cloud, &grid);
    let paged = store.paged_twin(PageConfig {
        slots_per_page: 7,
        ..PageConfig::default()
    });
    assert!(paged.is_paged());
    assert!(!paged.is_vq());
    assert!(
        paged.page_config().unwrap().verify_checksums,
        "v2 images verify by default"
    );
    assert_eq!(paged.len(), store.len());
    assert_eq!(paged.voxel_count(), store.voxel_count());
    let mut la = TrafficLedger::new();
    let mut lb = TrafficLedger::new();
    for v in 0..store.voxel_count() as u32 {
        assert_eq!(paged.ids_of(v), store.ids_of(v));
        let a: Vec<_> = store.fetch_coarse(v, &mut la).collect();
        let b: Vec<_> = paged.fetch_coarse(v, &mut lb).collect();
        assert_eq!(a, b);
    }
    for slot in 0..store.len() as u32 {
        assert_eq!(
            store.fetch_fine(slot, &mut la),
            paged.fetch_fine(slot, &mut lb)
        );
    }
    assert_eq!(la, lb, "paged metering must be identical");
    assert!(paged.page_faults() > 0);
    // Fault-free run: nothing retried, nothing dead, nothing injected.
    assert_eq!(paged.fault_snapshot(), StoreFaultSnapshot::default());
}

#[test]
fn paged_twin_is_bit_exact_vq_and_respects_budget() {
    let (cloud, grid) = scene_cloud();
    let quant = GaussianQuantizer::train(&cloud, &VqConfig::tiny());
    let store = VoxelStore::from_quantized(&quant, &grid);
    let budget = PageConfig {
        slots_per_page: 8,
        max_resident_pages: 2,
        ..PageConfig::default()
    };
    let paged = store.paged_twin(budget);
    assert!(paged.is_vq());
    let mut l = TrafficLedger::new();
    for slot in 0..store.len() as u32 {
        assert_eq!(
            paged.fetch_fine(slot, &mut l),
            quant.decode_one(paged.id_of(slot) as usize)
        );
    }
    // Two columns × two pages × 8 slots each is the residency ceiling.
    let per_page = 8 * (COARSE_BYTES as u64).max(paged.fine_bytes_per_gaussian());
    assert!(paged.resident_column_bytes() <= 4 * per_page);
    // The budget forces evictions: more faults than distinct pages.
    let distinct = 2 * (store.len() as u64).div_ceil(8);
    assert!(
        paged.page_faults() >= distinct,
        "faults {} < distinct pages {}",
        paged.page_faults(),
        distinct
    );
}

#[test]
fn v1_images_remain_readable_without_verification() {
    let (cloud, grid) = scene_cloud();
    let store = VoxelStore::from_cloud(&cloud, &grid);
    let v1 = VoxelStore::open_paged_bytes(store.to_scene_bytes_v1(), PageConfig::default())
        .expect("v1 image must stay readable");
    // Verification was requested (default) but the image has no tables:
    // the effective config flags it off.
    assert!(!v1.page_config().unwrap().verify_checksums);
    let mut la = TrafficLedger::new();
    let mut lb = TrafficLedger::new();
    for slot in 0..store.len() as u32 {
        assert_eq!(
            store.fetch_fine(slot, &mut la),
            v1.fetch_fine(slot, &mut lb)
        );
    }
    assert_eq!(la, lb);
}

#[test]
fn corrupt_column_byte_surfaces_as_corrupt_page() {
    let (cloud, grid) = scene_cloud();
    let store = VoxelStore::from_cloud(&cloud, &grid);
    let mut image = store.to_scene_bytes();
    let n = store.len();
    // Flip one byte in the middle of the coarse column (the columns sit at
    // the very end of the image: coarse then fine).
    let coarse_off = image.len() - n * FINE_BYTES_RAW - n * COARSE_BYTES;
    let at = coarse_off + (n / 2) * COARSE_BYTES;
    image[at] ^= 0x40;
    // Metadata is untouched, so the image still opens…
    let paged = VoxelStore::open_paged_bytes(image.clone(), PageConfig::default())
        .expect("column corruption is detected at fetch, not open");
    // …but fetching the affected voxel reports the corrupt chunk.
    let mut l = TrafficLedger::new();
    let mut saw_corrupt = false;
    for v in 0..paged.voxel_count() as u32 {
        match paged.try_fetch_coarse(v, &mut l).map(|it| it.count()) {
            Ok(_) => {}
            Err(StoreError::CorruptPage { column, .. }) => {
                assert_eq!(column, ColumnKind::Coarse);
                saw_corrupt = true;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(saw_corrupt, "the corrupted chunk was never touched");
    // Persistent corruption burns the retry budget each time.
    assert!(paged.fault_snapshot().retries > 0);
    // With verification off the corruption goes undetected — but must
    // still never panic (it decodes to a wrong Gaussian, by contract).
    let blind = VoxelStore::open_paged_bytes(
        image,
        PageConfig {
            verify_checksums: false,
            ..PageConfig::default()
        },
    )
    .expect("open");
    for v in 0..blind.voxel_count() as u32 {
        let _ = blind.try_fetch_coarse(v, &mut l).map(|it| it.count());
    }
}

#[test]
fn metadata_corruption_is_rejected_at_open() {
    let (cloud, grid) = scene_cloud();
    let store = VoxelStore::from_cloud(&cloud, &grid);
    let good = store.to_scene_bytes();
    // A flipped byte inside the range table breaks the metadata CRC.
    let mut evil = good.clone();
    evil[30] ^= 0x01;
    assert!(VoxelStore::open_paged_bytes(evil, PageConfig::default()).is_err());
}

#[test]
fn transient_faults_recover_bit_exactly_and_count_retries() {
    let (cloud, grid) = scene_cloud();
    let store = VoxelStore::from_cloud(&cloud, &grid);
    let paged = store
        .paged_twin_with_faults(
            PageConfig {
                slots_per_page: 8,
                max_read_attempts: 8,
                ..PageConfig::default()
            },
            FaultPolicy::transient(0xDECAF, 150),
        )
        .expect("open with faults");
    let mut la = TrafficLedger::new();
    let mut lb = TrafficLedger::new();
    for v in 0..store.voxel_count() as u32 {
        let a: Vec<_> = store.fetch_coarse(v, &mut la).collect();
        let b: Vec<_> = paged
            .try_fetch_coarse(v, &mut lb)
            .expect("transient faults must recover")
            .collect();
        assert_eq!(a, b);
    }
    for slot in 0..store.len() as u32 {
        assert_eq!(
            store.fetch_fine(slot, &mut la),
            paged.try_fetch_fine(slot, &mut lb).expect("recover")
        );
    }
    assert_eq!(la, lb, "recovered fetches meter identically");
    let snap = paged.fault_snapshot();
    assert!(snap.injected.transient > 0, "no faults were injected");
    // Every injected (non-permanent) fault is exactly one retry.
    assert_eq!(
        snap.retries,
        snap.injected.total() - snap.injected.permanent
    );
    assert_eq!(snap.dead_pages, 0);
}

#[test]
fn permanent_faults_mark_pages_dead_and_stay_dead() {
    let (cloud, grid) = scene_cloud();
    let store = VoxelStore::from_cloud(&cloud, &grid);
    let paged = store
        .paged_twin_with_faults(
            PageConfig {
                slots_per_page: 4,
                ..PageConfig::default()
            },
            FaultPolicy {
                seed: 7,
                permanent_per_mille: 300,
                ..FaultPolicy::default()
            },
        )
        .expect("open with faults");
    let mut l = TrafficLedger::new();
    let mut lost = Vec::new();
    for v in 0..paged.voxel_count() as u32 {
        if let Err(e) = paged.try_fetch_coarse(v, &mut l).map(|it| it.count()) {
            match e {
                StoreError::PageLost { .. } => lost.push(v),
                other => panic!("unexpected error: {other}"),
            }
        }
    }
    assert!(!lost.is_empty(), "no pages went permanently dark at 30%");
    let snap = paged.fault_snapshot();
    assert!(snap.dead_pages > 0);
    // Dead pages fail fast on re-fetch without new injector draws.
    let before = paged.fault_snapshot().injected;
    for &v in &lost {
        assert!(matches!(
            paged.try_fetch_coarse(v, &mut l).map(|it| it.count()),
            Err(StoreError::PageLost { .. })
        ));
    }
    assert_eq!(paged.fault_snapshot().injected, before);
}

#[test]
fn scene_file_round_trips_on_disk() {
    let (cloud, grid) = scene_cloud();
    let store = VoxelStore::from_cloud(&cloud, &grid);
    let path = std::env::temp_dir().join("gsvs_store_roundtrip.gsvs");
    store.write_scene_file(&path).expect("write scene file");
    let paged = VoxelStore::open_paged_file(&path, PageConfig::default()).expect("open");
    let mut la = TrafficLedger::new();
    let mut lb = TrafficLedger::new();
    for slot in 0..store.len() as u32 {
        assert_eq!(
            store.fetch_fine(slot, &mut la),
            paged.fetch_fine(slot, &mut lb)
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn write_scene_file_leaves_no_temp_litter() {
    let (cloud, grid) = scene_cloud();
    let store = VoxelStore::from_cloud(&cloud, &grid);
    let dir = std::env::temp_dir().join("gsvs_atomic_write_test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("scene.gsvs");
    store.write_scene_file(&path).expect("first write");
    // Overwriting an existing image is atomic: the destination always
    // holds either the old or the new complete image.
    store.write_scene_file(&path).expect("overwrite");
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .expect("read_dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".tmp"))
        .collect();
    assert!(
        leftovers.is_empty(),
        "temp files left behind: {leftovers:?}"
    );
    VoxelStore::open_paged_file(&path, PageConfig::default()).expect("reopen");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rewriting_a_file_paged_store_over_its_own_backing_is_safe() {
    let (cloud, grid) = scene_cloud();
    let store = VoxelStore::from_cloud(&cloud, &grid);
    let path = std::env::temp_dir().join("gsvs_rewrite_self.gsvs");
    store.write_scene_file(&path).expect("initial write");
    let paged = VoxelStore::open_paged_file(
        &path,
        PageConfig {
            slots_per_page: 8,
            max_resident_pages: 2,
            ..PageConfig::default()
        },
    )
    .expect("open");
    let mut l = TrafficLedger::new();
    let g0 = paged.fetch_fine(0, &mut l);
    // Re-writing over the store's own backing file must serialize
    // (paging everything in) before touching the destination.
    paged.write_scene_file(&path).expect("rewrite over self");
    assert_eq!(paged.fetch_fine(0, &mut l), g0);
    let reopened = VoxelStore::open_paged_file(&path, PageConfig::default()).expect("reopen");
    assert_eq!(reopened.fetch_fine(0, &mut l), g0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn open_rejects_garbage() {
    let err = VoxelStore::open_paged_bytes(vec![0u8; 16], PageConfig::default());
    assert!(err.is_err());
    let err = VoxelStore::open_paged_bytes(Vec::new(), PageConfig::default());
    assert!(err.is_err());
}

#[test]
fn open_rejects_hostile_headers_without_allocating() {
    let (cloud, grid) = scene_cloud();
    let good = VoxelStore::from_cloud(&cloud, &grid).to_scene_bytes();
    // Huge n_voxels: must fail the length check, not allocate ~34 GB.
    let mut evil = good.clone();
    evil[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(VoxelStore::open_paged_bytes(evil, PageConfig::default()).is_err());
    // A slot range pointing past the slot column must fail at open, not
    // out-of-bounds at render time (the v2 range table starts at byte 28;
    // this clobbers voxel 0's end bound).
    let mut evil = good.clone();
    evil[32..36].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(VoxelStore::open_paged_bytes(evil, PageConfig::default()).is_err());
    // Truncated columns fail at open too.
    let mut evil = good.clone();
    evil.truncate(good.len() - 100);
    assert!(VoxelStore::open_paged_bytes(evil, PageConfig::default()).is_err());
    // Trailing garbage violates the strict framing check.
    let mut evil = good.clone();
    evil.extend_from_slice(&[0u8; 3]);
    assert!(VoxelStore::open_paged_bytes(evil, PageConfig::default()).is_err());
    // Unknown flag bits reject (forward compatibility).
    let mut evil = good.clone();
    evil[8] |= 0x80;
    assert!(VoxelStore::open_paged_bytes(evil, PageConfig::default()).is_err());
}

#[test]
fn clone_of_paged_store_starts_cold_but_reads_identically() {
    let (cloud, grid) = scene_cloud();
    let store = VoxelStore::from_cloud(&cloud, &grid);
    let paged = store.paged_twin(PageConfig::default());
    let mut l = TrafficLedger::new();
    let g0 = paged.fetch_fine(0, &mut l);
    let cold = paged.clone();
    assert_eq!(cold.page_faults(), 0, "clones share no page state");
    assert_eq!(cold.fetch_fine(0, &mut l), g0);
}
