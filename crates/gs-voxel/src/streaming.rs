//! The fully-streaming, memory-centric renderer (paper Fig. 5).
//!
//! The frame is processed in **pixel groups** (paper Sec. III-A: "renders a
//! group of pixels together"). The group is the on-chip working set: its
//! partial pixel values persist in SRAM across voxels (a 64×64 group of
//! 16-byte partials fits the paper's 89 KB intermediate buffer). For each
//! group: intersect rays with the voxel grid, topologically sort the
//! intersected voxels, then stream voxels one at a time through
//! hierarchical filtering → in-voxel sort → blending. A voxel is skipped
//! entirely (no DRAM fetch) once every pixel whose ray intersects it has
//! saturated — the front-to-back order makes this exact.
//!
//! The steady-state group loop touches no hash map, no byte-per-pixel
//! mask, and performs no allocation:
//!
//! * the voxel → pixel map is an epoch-stamped dense-id remap feeding a
//!   two-pass counting-sort CSR built straight from the ray lists
//!   ([`VoxelPixelCsr`], the [`crate::order::OrderScratch`] trick);
//! * the per-voxel ray mask and the blender's saturation set are packed
//!   `u64` bitset words, so the "any live pixel?" test is
//!   `mask & !done != 0` per word and stride dilation is a precomputed
//!   per-pixel span table ([`MaskScratch`]) instead of a stride² loop;
//! * when the frame has fewer pixel groups than worker threads, each
//!   group's DDA ray grid is split across the shared
//!   [`gs_render::pool::WorkerPool`] (rays are independent; the CSR/order
//!   inputs are merged in deterministic ray order), so output stays
//!   **bit-identical** for any worker count — the same determinism
//!   contract as the parallel front-end in `gs_render`.
//!
//! The pre-CSR loop (hash-map voxel→pixels, `Vec<bool>` masks, float
//! pixel walk) soaked for a release as `render_reference_loop` and has
//! been deleted; the `streaming` bench reconstructs its mechanism inline
//! and pins byte-exactness against recorded frame digests.
//!
//! ## Fault tolerance (PR 6)
//!
//! When the store's backing is paged, a page read can fail: the fallible
//! twins [`StreamingScene::try_render`]/[`StreamingScene::try_render_into`]
//! surface [`StoreError`]s instead of panicking. With
//! [`StreamingConfig::degrade_on_fault`] set (the default), an unavailable
//! coarse column skips the voxel and an unavailable fine record blends its
//! coarse approximation (position + bounding scale as a grey isotropic
//! stand-in) or is dropped; every such event is counted in the frame's
//! [`DegradationReport`], which — like the ledger — is **thread-invariant**.
//! With degradation off, the first failing group (in deterministic group
//! order) aborts the frame with its error.

// Render-time paths must propagate faults, not panic — enforced
// workspace-wide by `[workspace.lints]` (tests are exempt via a
// mod-level allow).

use crate::dda::traverse_append;
use crate::filter::{coarse_test, fine_test, FineSplat, TileRect};
use crate::grid::VoxelGrid;
use crate::order::{topological_order_into, OrderScratch};
use crate::store::{
    lock_unpoisoned, ColumnKind, FaultPolicy, FaultStats, PageConfig, StoreError, VoxelStore,
};
use crate::workload::{FrameWorkload, TileWorkload};
use gs_core::camera::Camera;
use gs_core::image::ImageRgb;
use gs_core::vec::{Vec2, Vec3};
use gs_mem::cache::{CacheConfig, CacheReport, WorkingSetCache};
use gs_mem::dram::{round_to_burst, DEFAULT_BURST_BYTES};
use gs_mem::{Direction, Stage, TrafficLedger, MAX_TIERS};
use gs_render::pool::WorkerPool;
use gs_render::{ALPHA_EPS, ALPHA_MAX, TRANSMITTANCE_EPS};
use gs_scene::{Gaussian, GaussianCloud};
use gs_vq::{GaussianQuantizer, QuantizedCloud, TierSpec, VqConfig};
use serde::{Deserialize, Serialize};
use std::io;
use std::sync::{Arc, Mutex};

/// An out-of-order blend counts as a violation only when the depth
/// inversion exceeds this fraction of the voxel size — smaller inversions
/// are benign co-located-splat noise that even tiny ordering jitter
/// produces, not the cross-boundary errors of paper Fig. 6.
const VIOLATION_VOXEL_FRACTION: f32 = 0.1;

/// How the renderer picks a quality tier per voxel per frame (ISSUE 9).
///
/// Tier 0 is the full-quality second-half column every store carries;
/// tiers 1.. are the extra LOD columns built from
/// [`StreamingConfig::tiers`]. Selection happens once per frame in a
/// **serial pre-pass over scene voxels in ascending voxel id** — a pure
/// function of `(camera, policy, store layout)` — so the per-voxel tier
/// map is invariant across worker-thread counts, like every other frame
/// output. [`QualityPolicy::FullQuality`] skips the pre-pass entirely and
/// renders bit-identically to a tierless scene.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum QualityPolicy {
    /// Always fetch tier 0 (the default): byte-identical to the renderer
    /// before tiers existed, even on a store that carries extra tiers.
    #[default]
    FullQuality,
    /// Pick the tier from the voxel's projected screen-space footprint
    /// (`voxel_size · fy / depth`, in pixels): footprints at or above
    /// `threshold` render full quality, and each halving of the footprint
    /// below it drops one more tier (clamped to the coarsest built).
    /// Voxels behind the camera render full quality (their rays never
    /// reach them anyway).
    ScreenSpaceError {
        /// Footprint (pixels) at which quality starts dropping.
        threshold: f32,
    },
    /// [`QualityPolicy::ScreenSpaceError`] with a temporal enter/exit
    /// margin: the tier a voxel rendered at last frame persists while its
    /// footprint stays inside `threshold · (1 ∓ margin)`, so boundary
    /// voxels stop flickering between adjacent tiers across adjacent
    /// trajectory frames. The first frame (and any frame after
    /// [`StreamingScene::set_quality`]) selects exactly like
    /// `ScreenSpaceError`; later frames clamp the previous tier into the
    /// `[finer-bound, coarser-bound]` window the margin opens. The
    /// previous-tier map lives in the scene's per-session scratch, so the
    /// selection depends only on this session's own frame sequence —
    /// shared-store serving stays bit-identical to rendering solo.
    Hysteresis {
        /// Footprint (pixels) at which quality starts dropping.
        threshold: f32,
        /// Enter/exit margin as a fraction of `threshold` (clamped to
        /// `[0, 0.9]`); `0.0` degenerates to plain `ScreenSpaceError`.
        margin: f32,
    },
    /// Spend at most `bytes` of second-half demand per frame: voxels are
    /// ranked by projected footprint (descending, voxel id ascending on
    /// ties) and each takes the finest tier whose whole-voxel cost still
    /// fits the remaining budget, falling back to the coarsest tier when
    /// nothing fits.
    ByteBudget {
        /// Frame budget for fine-record demand bytes.
        bytes: u64,
    },
    /// Every voxel renders tier `tier` (clamped to the coarsest built) —
    /// the ablation knob the `lod` bench sweeps to isolate one tier's
    /// quality/traffic point.
    ForcedTier {
        /// Overall tier index (0 = full quality).
        tier: u8,
    },
}

/// Configuration of the streaming pipeline.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamingConfig {
    /// Voxel edge length (paper: 2.0 real-world, 0.4 synthetic).
    pub voxel_size: f32,
    /// Pixel-group edge length in pixels, at least
    /// [`StreamingConfig::MIN_GROUP_SIZE`]. Values below the minimum are
    /// clamped once, by [`StreamingConfig::validated`], when the scene is
    /// prepared (the seed silently re-clamped at every use site instead).
    pub group_size: u32,
    /// Fetch the VQ-compressed second half (paper Sec. III-C). When set,
    /// codebooks are trained at scene preparation with [`StreamingConfig::vq`].
    pub use_vq: bool,
    /// Enable the coarse-grained filter (phase 1). Disabling reproduces the
    /// paper's "w/o CGF" ablation: every streamed Gaussian fetches its full
    /// second half.
    pub use_coarse_filter: bool,
    /// VQ codebook configuration (only used when `use_vq`).
    pub vq: VqConfig,
    /// SH evaluation degree.
    pub sh_degree: u8,
    /// Background colour.
    pub background: Vec3,
    /// VSU ray sampling stride within a group (1 = every pixel ray).
    pub ray_stride: u32,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Working-set cache model in front of the store's coarse/fine
    /// fetches. When set, one [`WorkingSetCache`] per stage persists
    /// across frames (trajectory temporal locality): repeat fetches are
    /// metered as on-chip hits and only burst-rounded line fills reach the
    /// ledger's DRAM counters. The simulation is trace-driven in
    /// deterministic group order, so hit/miss counts are invariant across
    /// worker-thread counts. `None` (the default) meters every fetch as
    /// its own burst-rounded DRAM transaction.
    pub cache: Option<CacheConfig>,
    /// Degrade instead of failing when a paged fetch errors mid-frame:
    /// an unavailable coarse column skips the voxel, an unavailable fine
    /// record blends its coarse approximation (or is dropped when even
    /// that is unreadable), and the frame completes with the events
    /// counted in [`StreamingOutput::degradation`]. When `false`, the
    /// first failing group (deterministic group order) aborts
    /// [`StreamingScene::try_render`] with the error. Resident stores
    /// never fault, so the flag is inert for them. Default `true`.
    pub degrade_on_fault: bool,
    /// Extra LOD tiers to build at scene preparation (tier 0, full
    /// quality, always exists). `Some` entries become tiers 1.. in order;
    /// `None` slots are skipped. Default: no extra tiers — the store
    /// stays single-tier and serializes to the bit-identical v2 image.
    /// (The length is a literal — [`MAX_EXTRA_TIERS`] — because rustc
    /// 1.95's borrowck ICEs on named-const field array lengths captured
    /// by closures across crates.)
    pub tiers: [Option<TierSpec>; 3],
    /// Per-frame tier selection policy (see [`QualityPolicy`]). Inert
    /// without built tiers; the default [`QualityPolicy::FullQuality`] is
    /// byte-identical to the pre-tier renderer either way.
    pub quality: QualityPolicy,
    /// DRAM burst (transaction) size in bytes: every uncached fetch and
    /// the pixel writeback round up to a multiple of it. When
    /// [`StreamingConfig::cache`] is set, the cache's `burst_bytes` wins
    /// (one knob governs the line-fill size) — [`StreamingConfig::validated`]
    /// copies it over. Default [`gs_mem::dram::DEFAULT_BURST_BYTES`].
    pub burst_bytes: u64,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig {
            voxel_size: 1.0,
            group_size: 32,
            use_vq: false,
            use_coarse_filter: true,
            vq: VqConfig::default(),
            sh_degree: 3,
            background: Vec3::ZERO,
            ray_stride: 1,
            threads: 0,
            cache: None,
            degrade_on_fault: true,
            tiers: [None; MAX_EXTRA_TIERS],
            quality: QualityPolicy::FullQuality,
            burst_bytes: DEFAULT_BURST_BYTES,
        }
    }
}

/// Extra LOD tiers a config can ask for (tier 0 plus these fill
/// [`gs_mem::MAX_TIERS`] accounting lanes). A literal, not
/// `MAX_TIERS - 1`, so the array length in [`StreamingConfig::tiers`] is
/// a plain constant (rustc 1.95 ICEs on cross-crate const expressions in
/// field array lengths captured by closures); the assert keeps the two in
/// lockstep.
pub const MAX_EXTRA_TIERS: usize = 3;
const _: () = assert!(MAX_EXTRA_TIERS == MAX_TIERS - 1);

impl StreamingConfig {
    /// Smallest supported pixel-group edge. Below 16 px the per-group fixed
    /// costs (ray setup, voxel ordering tables) dominate any streaming win,
    /// and a group no longer amortizes even one voxel fetch — the paper's
    /// design space starts at 16 px groups.
    pub const MIN_GROUP_SIZE: u32 = 16;

    /// Normalizes the configuration once: clamps `group_size` up to
    /// [`Self::MIN_GROUP_SIZE`], `ray_stride` up to 1 and `burst_bytes`
    /// up to 1, and lets a configured cache's `burst_bytes` override the
    /// standalone knob (one knob governs the line-fill size). Called by
    /// [`StreamingScene::new`]/[`StreamingScene::with_quantization`], so
    /// every use site downstream can rely on the invariants instead of
    /// re-clamping.
    pub fn validated(mut self) -> StreamingConfig {
        self.group_size = self.group_size.max(Self::MIN_GROUP_SIZE);
        self.ray_stride = self.ray_stride.max(1);
        if let Some(c) = self.cache {
            self.burst_bytes = c.burst_bytes;
        }
        self.burst_bytes = self.burst_bytes.max(1);
        self
    }

    /// The configured extra tiers, in tier order (`Some` slots only).
    pub fn tier_specs(&self) -> Vec<TierSpec> {
        self.tiers.iter().flatten().copied().collect()
    }

    /// A three-step coarsening ladder (SH 2 / SH 1 / SH 0, each pruning
    /// harder and, for VQ stores, shrinking the codebooks one shift per
    /// step) — the shape the `lod` bench sweeps and a reasonable starting
    /// point for real scenes. Every step prunes at least some records so
    /// each tier moves strictly fewer DRAM transactions than the last.
    pub fn default_tier_ladder() -> [Option<TierSpec>; MAX_EXTRA_TIERS] {
        [
            Some(TierSpec {
                sh_degree: 2,
                keep_permille: 900,
                codebook_shift: 1,
            }),
            Some(TierSpec {
                sh_degree: 1,
                keep_permille: 700,
                codebook_shift: 2,
            }),
            Some(TierSpec {
                sh_degree: 0,
                keep_permille: 400,
                codebook_shift: 3,
            }),
        ]
    }

    /// The paper's full-fledged configuration (VQ + coarse filter) for a
    /// given voxel size and codebook setup.
    pub fn full(voxel_size: f32, vq: VqConfig) -> StreamingConfig {
        StreamingConfig {
            voxel_size,
            use_vq: true,
            use_coarse_filter: true,
            vq,
            ..Default::default()
        }
    }

    /// The "w/o CGF" ablation (VQ on, coarse filter off).
    pub fn without_cgf(voxel_size: f32, vq: VqConfig) -> StreamingConfig {
        StreamingConfig {
            voxel_size,
            use_vq: true,
            use_coarse_filter: false,
            vq,
            ..Default::default()
        }
    }

    /// The "w/o VQ+CGF" ablation (plain streaming).
    pub fn without_vq_cgf(voxel_size: f32) -> StreamingConfig {
        StreamingConfig {
            voxel_size,
            use_vq: false,
            use_coarse_filter: false,
            ..Default::default()
        }
    }

    /// Bytes of on-chip partial-pixel state one group needs (16 B/pixel).
    pub fn group_partial_bytes(&self) -> u64 {
        self.group_size as u64 * self.group_size as u64 * 16
    }
}

/// Depth-order violation measurements (feeds Fig. 7 and the CBP loss).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ViolationReport {
    /// Per-Gaussian flag: blended out of depth order at least once.
    pub flags: Vec<bool>,
    /// Blend operations that happened out of order.
    pub violating_blends: u64,
    /// Total blend operations.
    pub total_blends: u64,
}

impl ViolationReport {
    /// Fraction of scene Gaussians flagged (the paper's "error Gaussian
    /// ratio", Fig. 7).
    pub fn gaussian_ratio(&self) -> f64 {
        if self.flags.is_empty() {
            return 0.0;
        }
        self.flags.iter().filter(|f| **f).count() as f64 / self.flags.len() as f64
    }

    /// Merges another report (OR on flags, sums on counters).
    pub fn merge(&mut self, other: &ViolationReport) {
        if self.flags.len() < other.flags.len() {
            self.flags.resize(other.flags.len(), false);
        }
        for (a, b) in self.flags.iter_mut().zip(&other.flags) {
            *a |= *b;
        }
        self.violating_blends += other.violating_blends;
        self.total_blends += other.total_blends;
    }
}

/// Fault-recovery accounting of one rendered frame.
///
/// Thread-invariant like the ledger: per-voxel events are summed over the
/// worker chunks (order-independent) and the page/fault counters are a
/// snapshot delta over the store, whose page materializations happen in a
/// deterministic set regardless of which worker triggers them first.
/// All-zero (see [`DegradationReport::is_clean`]) on resident stores and
/// on fault-free paged frames.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradationReport {
    /// Page-read attempts that failed and were retried (or exhausted)
    /// during this frame, both columns.
    pub page_retries: u64,
    /// Pages newly marked dead by permanent faults during this frame.
    pub pages_lost: u64,
    /// Dead pages re-fetched and healed from an attached replica during
    /// this frame ([`StreamingScene::attach_replica_bytes`]); healed
    /// pages re-verified their CRC chunks, so the frame's bytes are the
    /// exact fault-free bytes.
    pub pages_healed: u64,
    /// Voxels skipped because their coarse column was unavailable.
    pub voxels_skipped: u64,
    /// Fine records replaced by their coarse approximation.
    pub fine_degraded: u64,
    /// Fine records dropped entirely (coarse fallback also unreadable).
    pub fine_skipped: u64,
    /// Faults injected by the store's [`FaultPolicy`] wrapper during this
    /// frame (zero without one).
    pub injected: FaultStats,
}

impl DegradationReport {
    /// `true` when the frame rendered without any fault, retry or
    /// degradation — the output is the exact fault-free image.
    pub fn is_clean(&self) -> bool {
        *self == DegradationReport::default()
    }
}

/// Per-tier usage of one rendered frame, indexed by overall tier (0 =
/// full quality, 1.. = the extra LOD tiers). Thread-invariant: the voxel
/// counts come from the serial tier-map pre-pass and the byte counters
/// from the merged frame ledger's per-tier lanes.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierUsageReport {
    /// Scene voxels assigned to each tier this frame (sums to the scene's
    /// voxel count; all in lane 0 under [`QualityPolicy::FullQuality`]).
    pub voxels: [u64; MAX_TIERS],
    /// Fine-record demand bytes fetched from each tier.
    pub fetched_bytes: [u64; MAX_TIERS],
    /// Fine-record DRAM transaction bytes each tier moved (burst-rounded;
    /// cache-miss fills only when a cache is configured).
    pub dram_bytes: [u64; MAX_TIERS],
}

/// One rendered frame from the streaming pipeline.
#[derive(Clone, Debug)]
pub struct StreamingOutput {
    /// The image.
    pub image: ImageRgb,
    /// Workload counters for the accelerator model (one record per pixel
    /// group).
    pub workload: FrameWorkload,
    /// Depth-order violation measurements.
    pub violations: ViolationReport,
    /// Measured per-stage DRAM traffic: every store fetch and pixel
    /// writeback of this frame, metered as the bytes moved (per-worker
    /// ledgers merged in deterministic worker order). The workload's byte
    /// counters are derived from this ledger, so
    /// `ledger.total() == workload.dram_bytes()` always holds. The
    /// ledger's DRAM-transaction counters carry the burst-rounded traffic
    /// (cache-miss fills only when [`StreamingConfig::cache`] is set) and
    /// its hit counters the on-chip bytes.
    pub ledger: TrafficLedger,
    /// Per-stage working-set cache accounting of this frame (hit rates,
    /// fill traffic); `None` when no cache is configured.
    pub cache: Option<CacheReport>,
    /// Fault-recovery accounting of this frame (retries performed, pages
    /// lost, voxels degraded/skipped). Thread-invariant; all-zero on
    /// resident stores and fault-free paged frames.
    pub degradation: DegradationReport,
    /// Per-tier usage: which tier each voxel rendered at and what each
    /// tier cost in demand/DRAM bytes. All traffic sits in lane 0 for
    /// tierless scenes and under [`QualityPolicy::FullQuality`].
    pub tiers: TierUsageReport,
}

impl Default for StreamingOutput {
    /// An empty frame, ready for [`StreamingScene::render_into`] — every
    /// buffer starts unallocated and grows once on first use.
    fn default() -> StreamingOutput {
        StreamingOutput {
            image: ImageRgb::new(0, 0),
            workload: FrameWorkload::default(),
            violations: ViolationReport::default(),
            ledger: TrafficLedger::new(),
            cache: None,
            degradation: DegradationReport::default(),
            tiers: TierUsageReport::default(),
        }
    }
}

/// Where the per-voxel streaming phases fetch Gaussian data from.
///
/// The production path is [`FetchPath::Store`]: both phases read only the
/// [`VoxelStore`]'s columns. [`FetchPath::CloudTwin`] re-reads the
/// in-memory clouds the way the pre-store renderer did — it exists purely
/// as the byte-exactness reference twin for
/// [`StreamingScene::render_cloud_twin`] and meters the same byte counts,
/// so the two paths must agree bit-for-bit on images, workloads and
/// ledgers.
enum FetchPath<'a> {
    Store,
    CloudTwin {
        /// The cloud the fine phase renders from (the decoded cloud when
        /// VQ is enabled, the source otherwise).
        render: &'a GaussianCloud,
    },
}

/// Which implementation of the two payload kernels (DDA march, EWA blend)
/// a frame runs. [`PayloadKernels::Production`] is the overhauled pair;
/// [`PayloadKernels::Reference`] runs the kept-verbatim originals
/// ([`crate::dda::reference`] and [`GroupBlender::blend_reference`]).
/// Everything else — filtering, ordering, fetching, metering — is shared,
/// so the two selections must produce byte-identical frames; the `payload`
/// bench and the exactness suite assert it on every scene kind, raw and
/// VQ, resident and paged, for any worker count.
#[doc(hidden)]
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PayloadKernels {
    /// Incremental-index DDA marcher + lane-wise blender.
    Production,
    /// The pre-overhaul kernels, kept verbatim as bit-exact twins.
    Reference,
}

/// A scene prepared for streaming: voxelized layout, the voxel-resident
/// columnar store, and optional codebooks.
///
/// Preparation (voxelization, store construction, VQ training) happens
/// offline in the paper; the per-frame work is [`StreamingScene::render`],
/// whose intermediate buffers and worker threads persist across frames
/// (zero-alloc steady state; the returned image/workload/ledger are the
/// caller-owned outputs).
///
/// The immutable prepared state (grid, source cloud, store, codebooks) is
/// `Arc`-shared: [`StreamingScene::fork_session`] hands out sessions that
/// read the **same** store (paged columns included — pages one session
/// materializes are warm for all, see `gs-serve`), while [`Clone`] keeps
/// its historical deep-copy semantics for the store so clones stay fully
/// independent (cold page state, separate fault counters).
#[derive(Debug)]
pub struct StreamingScene {
    grid: Arc<VoxelGrid>,
    source: Arc<GaussianCloud>,
    store: Arc<VoxelStore>,
    quant: Option<Arc<QuantizedCloud>>,
    config: StreamingConfig,
    scratch: Mutex<StreamScratch>,
}

impl Clone for StreamingScene {
    /// Clones the prepared scene; the clone starts with a fresh frame
    /// arena and worker pool (frame state is never shared). The immutable
    /// grid/cloud/codebooks are `Arc`-shared (indistinguishable from a
    /// deep copy), but the store is deep-cloned: a paged clone starts with
    /// **cold, independent** page state — the suites and benches that
    /// clone a scene to measure it twice rely on that. To share the store
    /// (and its page warmth) instead, use
    /// [`StreamingScene::fork_session`].
    fn clone(&self) -> Self {
        StreamingScene {
            grid: Arc::clone(&self.grid),
            source: Arc::clone(&self.source),
            store: Arc::new(VoxelStore::clone(&self.store)),
            quant: self.quant.clone(),
            config: self.config,
            scratch: Mutex::new(StreamScratch::default()),
        }
    }
}

impl StreamingScene {
    /// Prepares a cloud for streaming. Trains VQ codebooks when
    /// `config.use_vq` is set, builds the voxel-resident store (raw or
    /// VQ-indexed second halves), and — when [`StreamingConfig::tiers`]
    /// names any — builds the extra LOD tiers with the store's pure
    /// per-Gaussian importance fallback. The configuration is normalized
    /// via [`StreamingConfig::validated`].
    pub fn new(cloud: GaussianCloud, config: StreamingConfig) -> StreamingScene {
        Self::build(cloud, config, None)
    }

    /// [`StreamingScene::new`] with externally computed per-Gaussian
    /// importance scores (global Gaussian id order — the
    /// `gs-baselines` view-importance convention) steering each tier's
    /// pruning instead of the opacity × extent fallback.
    ///
    /// # Panics
    ///
    /// Panics when tiers are configured and `importance` does not cover
    /// the cloud.
    pub fn new_with_importance(
        cloud: GaussianCloud,
        config: StreamingConfig,
        importance: &[f64],
    ) -> StreamingScene {
        Self::build(cloud, config, Some(importance))
    }

    fn build(
        cloud: GaussianCloud,
        config: StreamingConfig,
        importance: Option<&[f64]>,
    ) -> StreamingScene {
        let config = config.validated();
        let grid = VoxelGrid::build(&cloud, config.voxel_size);
        let (quant, mut store) = if config.use_vq {
            let q = GaussianQuantizer::train(&cloud, &config.vq);
            let store = VoxelStore::from_quantized(&q, &grid);
            (Some(q), store)
        } else {
            (None, VoxelStore::from_cloud(&cloud, &grid))
        };
        let specs = config.tier_specs();
        if !specs.is_empty() {
            let vq = config.use_vq.then_some(&config.vq);
            store.build_tiers(&cloud, vq, &specs, importance);
        }
        StreamingScene {
            grid: Arc::new(grid),
            source: Arc::new(cloud),
            store: Arc::new(store),
            quant: quant.map(Arc::new),
            config,
            scratch: Mutex::new(StreamScratch::default()),
        }
    }

    /// Prepares with an externally trained quantizer (e.g. after
    /// quantization-aware fine-tuning). Extra LOD tiers from
    /// [`StreamingConfig::tiers`] are built like in
    /// [`StreamingScene::new`] (tier codebooks retrain from
    /// [`StreamingConfig::vq`]).
    pub fn with_quantization(
        cloud: GaussianCloud,
        quant: QuantizedCloud,
        mut config: StreamingConfig,
    ) -> StreamingScene {
        config.use_vq = true;
        let config = config.validated();
        let grid = VoxelGrid::build(&cloud, config.voxel_size);
        let mut store = VoxelStore::from_quantized(&quant, &grid);
        let specs = config.tier_specs();
        if !specs.is_empty() {
            store.build_tiers(&cloud, Some(&config.vq), &specs, None);
        }
        StreamingScene {
            grid: Arc::new(grid),
            source: Arc::new(cloud),
            store: Arc::new(store),
            quant: Some(Arc::new(quant)),
            config,
            scratch: Mutex::new(StreamScratch::default()),
        }
    }

    /// Forks a per-client **session** over this scene: the grid, source
    /// cloud, codebooks **and the store itself** are `Arc`-shared (a paged
    /// store's page state included — pages any session materializes are
    /// warm for every session), while all frame-persistent state (frame
    /// arena, worker pool, working-set cache, tier-hysteresis history)
    /// starts fresh and stays private to the fork.
    ///
    /// Rendered output is bit-identical to a deep [`Clone`]: pixels depend
    /// only on the store's *bytes*, which paging never changes (paged ≡
    /// resident is the determinism contract), and the cache/hysteresis
    /// models depend only on the session's own frame sequence. Sharing
    /// changes who pays the page-fill cost, never what any session
    /// renders — `gs-serve` builds on exactly this.
    pub fn fork_session(&self) -> StreamingScene {
        StreamingScene {
            grid: Arc::clone(&self.grid),
            source: Arc::clone(&self.source),
            store: Arc::clone(&self.store),
            quant: self.quant.clone(),
            config: self.config,
            scratch: Mutex::new(StreamScratch::default()),
        }
    }

    /// Overrides the per-frame tier-selection policy for this scene (or
    /// session — forks carry their own config copy, so per-client quality
    /// never leaks across sessions sharing a store). Clears the
    /// tier-hysteresis history: the next frame selects as a first frame.
    pub fn set_quality(&mut self, quality: QualityPolicy) {
        self.config.quality = quality;
        lock_unpoisoned(&self.scratch).prev_tiers.clear();
    }

    /// Overrides the worker-thread count for this scene (or session).
    /// Purely a scheduling knob: every frame output is bit-identical for
    /// any value (0 = all cores).
    pub fn set_threads(&mut self, threads: usize) {
        self.config.threads = threads;
    }

    /// The voxel grid.
    pub fn grid(&self) -> &VoxelGrid {
        &self.grid
    }

    /// The voxel-resident columnar store the render phases read from.
    pub fn store(&self) -> &VoxelStore {
        &self.store
    }

    /// Swaps the store's backing for a demand-paged twin materialized from
    /// its serialized in-memory scene image ([`VoxelStore::paged_twin`]).
    /// Rendering stays byte-identical — paging is host-memory management,
    /// not modeled traffic.
    pub fn page_out(&mut self, config: PageConfig) {
        self.store = Arc::new(self.store.paged_twin(config));
    }

    /// [`StreamingScene::page_out`] with a deterministic [`FaultPolicy`]
    /// wrapped around the paged backing's page reads — the fault-injection
    /// harness for the recovery suites and the `robust` bench.
    pub fn page_out_with_faults(
        &mut self,
        config: PageConfig,
        policy: FaultPolicy,
    ) -> Result<(), StoreError> {
        self.store = Arc::new(self.store.paged_twin_with_faults(config, policy)?);
        Ok(())
    }

    /// [`StreamingScene::page_out`] over a pre-checksum version-1 scene
    /// image — the back-compat twin (verification flagged off); kept
    /// doc-hidden for the robustness suites and the `robust` bench.
    #[doc(hidden)]
    pub fn page_out_v1(&mut self, config: PageConfig) {
        self.store = Arc::new(self.store.paged_twin_v1(config));
    }

    /// [`StreamingScene::page_out`] over a forced version-3 scene image
    /// (zero tiers when none were built) — the forward-compat twin for
    /// the v3 ⊇ v2 suites and the `lod` bench.
    #[doc(hidden)]
    pub fn page_out_v3(&mut self, config: PageConfig) {
        self.store = Arc::new(self.store.paged_twin_v3(config));
    }

    /// Serializes the store to `path` and reopens it demand-paged from
    /// that file — the columns now live on disk and only materialized
    /// pages occupy host memory.
    pub fn page_out_file(&mut self, path: &std::path::Path, config: PageConfig) -> io::Result<()> {
        self.store.write_scene_file(path)?;
        self.store = Arc::new(VoxelStore::open_paged_file(path, config)?);
        Ok(())
    }

    /// [`StreamingScene::page_out_file`] with a deterministic
    /// [`FaultPolicy`] wrapped around the on-disk page reads — the
    /// file-backed half of the fault-injection harness
    /// (`tests/fault_injection.rs` drives both backings through it).
    pub fn page_out_file_with_faults(
        &mut self,
        path: &std::path::Path,
        config: PageConfig,
        policy: FaultPolicy,
    ) -> Result<(), StoreError> {
        self.store.write_scene_file(path)?;
        self.store = Arc::new(VoxelStore::open_paged_file_with_faults(
            path, config, policy,
        )?);
        Ok(())
    }

    /// Attaches a fallback (replica) scene image to the paged store so
    /// pages lost to permanent faults can be re-fetched and healed
    /// ([`VoxelStore::attach_replica_bytes`]). Errors on resident
    /// backings and on replicas whose length or metadata prefix disagrees
    /// with the primary image.
    pub fn attach_replica_bytes(&self, image: Vec<u8>) -> Result<(), StoreError> {
        self.store.attach_replica_bytes(image)
    }

    /// [`StreamingScene::attach_replica_bytes`] over an on-disk replica
    /// file ([`VoxelStore::attach_replica_file`]).
    pub fn attach_replica_file(&self, path: &std::path::Path) -> Result<(), StoreError> {
        self.store.attach_replica_file(path)
    }

    /// Per-page health map of the store's `column`
    /// ([`VoxelStore::dead_page_map`]): `true` marks a page lost to a
    /// permanent fault. Empty for resident backings.
    pub fn dead_page_map(&self, column: ColumnKind) -> Vec<bool> {
        self.store.dead_page_map(column)
    }

    /// Evicts the working-set cache model (the next frame starts cold).
    /// No-op when no cache is configured.
    pub fn reset_cache(&self) {
        let mut guard = lock_unpoisoned(&self.scratch);
        guard.cache = None;
    }

    /// The configuration.
    pub fn config(&self) -> &StreamingConfig {
        &self.config
    }

    /// The source cloud.
    pub fn cloud(&self) -> &GaussianCloud {
        &self.source
    }

    /// The trained quantizer, if VQ is enabled.
    pub fn quantized(&self) -> Option<&QuantizedCloud> {
        self.quant.as_deref()
    }

    /// This frame's per-voxel tier map (the serial pre-pass output of the
    /// last rendered frame; empty under [`QualityPolicy::FullQuality`],
    /// on tierless scenes, and before the first frame). Exposed for the
    /// LOD suites to measure tier flicker across trajectory frames.
    #[doc(hidden)]
    pub fn last_tier_map(&self) -> Vec<u8> {
        lock_unpoisoned(&self.scratch).tier_map.clone()
    }

    /// Renders one frame. The coarse and fine phases read **only** from the
    /// voxel-resident [`VoxelStore`]; every fetch is metered through the
    /// rendering worker's [`TrafficLedger`] and the merged frame ledger is
    /// returned in the output.
    ///
    /// All intermediate buffers (group pixel partials, per-chunk DDA /
    /// filter / blend scratch, per-worker ledgers) live in a frame arena
    /// and the group workers run on a persistent pool, both reused across
    /// frames: steady-state rendering allocates only the returned
    /// image/workload ([`StreamingScene::render_into`] reuses even those).
    ///
    /// # Panics
    ///
    /// On a [`StoreError`] from a paged backing (impossible for resident
    /// stores). Paged callers that need to survive faults use
    /// [`StreamingScene::try_render`].
    pub fn render(&self, cam: &Camera) -> StreamingOutput {
        let mut out = StreamingOutput::default();
        self.render_into(cam, &mut out);
        out
    }

    /// Fallible twin of [`StreamingScene::render`]: surfaces paged-store
    /// faults as [`StoreError`] instead of panicking. With
    /// [`StreamingConfig::degrade_on_fault`] (the default), only faults
    /// that defeat retry **and** degradation reach the error path; the
    /// recovery that did happen is reported in
    /// [`StreamingOutput::degradation`].
    pub fn try_render(&self, cam: &Camera) -> Result<StreamingOutput, StoreError> {
        let mut out = StreamingOutput::default();
        self.try_render_into(cam, &mut out)?;
        Ok(out)
    }

    /// [`StreamingScene::render`] into a caller-owned output: the image,
    /// per-tile workload records, violation flags and ledger of `out` are
    /// all rewritten in place, keeping their allocations. A warm frame
    /// loop through here performs **zero** heap allocations
    /// (`tests/alloc_free_streaming.rs` proves it with a counting
    /// allocator).
    ///
    /// # Panics
    ///
    /// On a [`StoreError`] from a paged backing, like
    /// [`StreamingScene::render`].
    pub fn render_into(&self, cam: &Camera, out: &mut StreamingOutput) {
        if let Err(e) = self.try_render_into(cam, out) {
            panic!("streaming render failed: {e}");
        }
    }

    /// Fallible twin of [`StreamingScene::render_into`]. On `Err` the
    /// frame was abandoned: `out`'s contents are unspecified (buffers are
    /// reusable, values meaningless) and the frame-persistent cache model
    /// did not advance.
    pub fn try_render_into(
        &self,
        cam: &Camera,
        out: &mut StreamingOutput,
    ) -> Result<(), StoreError> {
        self.render_frame(cam, &FetchPath::Store, PayloadKernels::Production, out)
    }

    /// Whole-frame twin of [`StreamingScene::render`] running the
    /// kept-verbatim payload kernels ([`PayloadKernels::Reference`]):
    /// the original DDA step loop and pixel-at-a-time blender. Exists
    /// purely so the exactness suite and the `payload` bench can assert
    /// that the overhauled kernels change no byte of any frame — image,
    /// workload, violations and ledger must all compare equal.
    ///
    /// # Panics
    ///
    /// On a [`StoreError`] from a paged backing, like
    /// [`StreamingScene::render`].
    #[doc(hidden)]
    pub fn render_payload_twin(&self, cam: &Camera) -> StreamingOutput {
        let mut out = StreamingOutput::default();
        if let Err(e) =
            self.render_frame(cam, &FetchPath::Store, PayloadKernels::Reference, &mut out)
        {
            panic!("payload-twin render failed: {e}");
        }
        out
    }

    /// Byte-exactness reference twin of [`StreamingScene::render`]: fetches
    /// Gaussian data from the in-memory clouds (decoding the whole cloud
    /// first when VQ is enabled) instead of the store's columns, the way
    /// the pre-store renderer did. Because the store's decodes are
    /// bit-exact, this must produce identical images, workloads and
    /// ledgers — `tests/store_ledger.rs` asserts it on every scene kind.
    /// Not a steady-state path (the VQ decode allocates a full cloud per
    /// call); use it for validation only.
    ///
    /// # Panics
    ///
    /// On a [`StoreError`] from a paged backing, like
    /// [`StreamingScene::render`] (drive it on resident backings).
    pub fn render_cloud_twin(&self, cam: &Camera) -> StreamingOutput {
        let decoded;
        let render = match &self.quant {
            Some(q) => {
                decoded = q.decode();
                &decoded
            }
            None => &*self.source,
        };
        let mut out = StreamingOutput::default();
        let path = FetchPath::CloudTwin { render };
        if let Err(e) = self.render_frame(cam, &path, PayloadKernels::Production, &mut out) {
            panic!("cloud-twin render failed: {e}");
        }
        out
    }

    fn render_frame(
        &self,
        cam: &Camera,
        path: &FetchPath<'_>,
        kernels: PayloadKernels,
        out: &mut StreamingOutput,
    ) -> Result<(), StoreError> {
        // The frame's degradation counters are deltas over this snapshot
        // (retries/dead pages/injected faults accumulate in the store).
        let fault_base = self.store.fault_snapshot();
        let width = cam.width();
        let height = cam.height();
        let gsz = self.config.group_size;
        let gp = (gsz * gsz) as usize;
        let groups_x = width.div_ceil(gsz);
        let groups_y = height.div_ceil(gsz);
        let n_groups = (groups_x * groups_y) as usize;

        let threads = if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.config.threads
        };
        // When the frame has fewer groups than workers, group-level
        // chunking cannot fill the machine — flip to intra-group ray
        // parallelism instead: groups run serially (in deterministic group
        // order) and each group's DDA ray grid fans out across the pool.
        // Both modes are bit-identical for any thread count, so the
        // crossover is purely a scheduling choice.
        let ray_parallel = threads > 1 && n_groups < threads;
        let chunks = if ray_parallel {
            1
        } else {
            threads.min(n_groups).max(1)
        };
        let chunk = n_groups.div_ceil(chunks);

        let mut guard = lock_unpoisoned(&self.scratch);
        let StreamScratch {
            pool,
            pixels,
            workloads,
            vblends,
            groups,
            cache,
            tier_map,
            prev_tiers,
        } = &mut *guard;
        pixels.resize(n_groups * gp, Vec3::ZERO);
        workloads.resize(n_groups, TileWorkload::default());
        vblends.resize(n_groups, 0);
        if groups.len() < chunks {
            groups.resize_with(chunks, GroupScratch::default);
        }

        // Serial per-voxel tier selection (ascending voxel id): a pure
        // function of camera + policy + store layout, so the map — and
        // therefore every tiered fetch — is invariant across worker
        // counts. `FullQuality` (and the cloud twin, which has no tier
        // columns to read) skips the pre-pass entirely: the group loop
        // then takes the legacy fetch path untouched, which is what makes
        // `FullQuality` bit-identical to the pre-tier renderer.
        let use_tiers = matches!(path, FetchPath::Store)
            && self.store.tier_count() > 0
            && self.config.quality != QualityPolicy::FullQuality;
        let tmap: Option<&[u8]> = if use_tiers {
            self.fill_tier_map(cam, tier_map, prev_tiers);
            Some(tier_map.as_slice())
        } else {
            None
        };

        if chunks <= 1 {
            let group_scratch = &mut groups[0];
            group_scratch.violating.clear();
            group_scratch.ledger.clear();
            group_scratch.trace.clear();
            group_scratch.degradation = DegradationReport::default();
            group_scratch.error = None;
            let mut ray_pool = if ray_parallel {
                Some(WorkerPool::ensure(pool, threads))
            } else {
                None
            };
            for t in 0..n_groups {
                let gx = t as u32 % groups_x;
                let gy = t as u32 / groups_x;
                let buf = &mut pixels[t * gp..(t + 1) * gp];
                let (w, vb) = self.render_group_into(
                    cam,
                    gx,
                    gy,
                    width,
                    height,
                    path,
                    kernels,
                    tmap,
                    group_scratch,
                    buf,
                    ray_pool.as_deref_mut(),
                );
                workloads[t] = w;
                vblends[t] = vb;
                if group_scratch.error.is_some() {
                    break; // fail-fast: the frame is aborted below
                }
            }
        } else {
            // Chunk c renders groups [c·chunk, (c+1)·chunk): disjoint slices
            // of the pixel/workload/vblend buffers, reconstructed from raw
            // base pointers inside the `Fn(usize)` job (which cannot be
            // handed pre-split `&mut` slices).
            let px_base = pixels.as_mut_ptr() as usize;
            let wl_base = workloads.as_mut_ptr() as usize;
            let vb_base = vblends.as_mut_ptr() as usize;
            let gs_base = groups.as_mut_ptr() as usize;
            let pool = WorkerPool::ensure(pool, chunks);
            pool.run(chunks, |c| {
                let lo = c * chunk;
                let hi = ((c + 1) * chunk).min(n_groups);
                // SAFETY: group ranges [lo, hi) are disjoint across chunk
                // indices and scratch slot `c` is unique per job; the
                // buffers outlive `pool.run`, which blocks until all jobs
                // finish.
                let group_scratch = unsafe { &mut *(gs_base as *mut GroupScratch).add(c) };
                group_scratch.violating.clear();
                group_scratch.ledger.clear();
                group_scratch.trace.clear();
                group_scratch.degradation = DegradationReport::default();
                group_scratch.error = None;
                if lo >= hi {
                    return;
                }
                let pixels = unsafe {
                    std::slice::from_raw_parts_mut(
                        (px_base as *mut Vec3).add(lo * gp),
                        (hi - lo) * gp,
                    )
                };
                let workloads = unsafe {
                    std::slice::from_raw_parts_mut((wl_base as *mut TileWorkload).add(lo), hi - lo)
                };
                let vblends = unsafe {
                    std::slice::from_raw_parts_mut((vb_base as *mut u64).add(lo), hi - lo)
                };
                for t in lo..hi {
                    let gx = t as u32 % groups_x;
                    let gy = t as u32 / groups_x;
                    let buf = &mut pixels[(t - lo) * gp..(t - lo + 1) * gp];
                    let (w, vb) = self.render_group_into(
                        cam,
                        gx,
                        gy,
                        width,
                        height,
                        path,
                        kernels,
                        tmap,
                        group_scratch,
                        buf,
                        None,
                    );
                    workloads[t - lo] = w;
                    vblends[t - lo] = vb;
                    if group_scratch.error.is_some() {
                        return; // fail-fast: the frame is aborted below
                    }
                }
            });
        }

        // A failed group aborts the frame *before* the assembly and cache
        // replay — the cache model never advances on an abandoned frame.
        // The globally-first failing group wins (chunks cover contiguous
        // increasing group ranges, so the per-chunk first error with the
        // smallest group index is the error the serial walk would hit),
        // keeping the surfaced error identical for any worker count.
        let mut first_err: Option<(usize, StoreError)> = None;
        for chunk_scratch in groups[..chunks].iter_mut() {
            if let Some((gi, e)) = chunk_scratch.error.take() {
                match &first_err {
                    Some((best, _)) if *best <= gi => {}
                    _ => first_err = Some((gi, e)),
                }
            }
        }
        if let Some((_, e)) = first_err {
            return Err(e);
        }

        // Assemble image, workload and violations (serial, deterministic)
        // into the caller's output, reusing every buffer in place.
        let image = &mut out.image;
        image.reset(width, height);
        let workload = &mut out.workload;
        workload.tiles.clear();
        workload.width = width;
        workload.height = height;
        workload.scene_voxels = self.grid.voxel_count() as u32;
        workload.scene_gaussians = self.source.len() as u64;
        let violations = &mut out.violations;
        violations.flags.clear();
        violations.flags.resize(self.source.len(), false);
        violations.violating_blends = 0;
        violations.total_blends = 0;
        for t in 0..n_groups {
            let gx = t as u32 % groups_x;
            let gy = t as u32 / groups_x;
            let ox = gx * gsz;
            let oy = gy * gsz;
            let n = gsz as usize;
            let group_pixels = &pixels[t * gp..(t + 1) * gp];
            for ly in 0..gsz {
                for lx in 0..gsz {
                    let px = ox + lx;
                    let py = oy + ly;
                    if px < width && py < height {
                        image.set(px, py, group_pixels[(ly as usize) * n + lx as usize]);
                    }
                }
            }
            workload.tiles.push(workloads[t]);
            violations.violating_blends += vblends[t];
            violations.total_blends += workloads[t].blend_fragments;
        }
        // Merge the per-worker ledgers in deterministic chunk order — the
        // frame's single source of byte truth (the per-tile byte counters
        // above were derived from the same per-worker ledgers, so totals
        // agree exactly).
        let ledger = &mut out.ledger;
        ledger.clear();
        let mut degradation = DegradationReport::default();
        for chunk_scratch in &groups[..chunks] {
            for &gi in &chunk_scratch.violating {
                violations.flags[gi as usize] = true;
            }
            ledger.merge(&chunk_scratch.ledger);
            degradation.voxels_skipped += chunk_scratch.degradation.voxels_skipped;
            degradation.fine_degraded += chunk_scratch.degradation.fine_degraded;
            degradation.fine_skipped += chunk_scratch.degradation.fine_skipped;
        }
        // Page/fault counters come from the store itself as a snapshot
        // delta: which pages materialize (and therefore which reads fault)
        // is a deterministic set for the frame, so the delta is invariant
        // across worker counts like the per-voxel sums above.
        let snap = self.store.fault_snapshot().since(fault_base);
        degradation.page_retries = snap.retries;
        degradation.pages_lost = snap.dead_pages;
        degradation.pages_healed = snap.pages_healed;
        degradation.injected = snap.injected;
        out.degradation = degradation;

        // Working-set cache simulation: replay the recorded coarse/fine
        // fetch trace through the frame-persistent caches. Chunks cover
        // contiguous group ranges in chunk order, so walking the chunk
        // traces back-to-back replays the frame in global group order —
        // the cache outcome is a pure function of that order and therefore
        // invariant across worker-thread counts. Hits become on-chip
        // bytes, misses become burst-rounded line fills (the only DRAM
        // transaction traffic of the cached stages).
        out.cache = self.config.cache.map(|cache_cfg| {
            let sim = cache.get_or_insert_with(|| FrameCacheSim {
                coarse: WorkingSetCache::new(cache_cfg),
                fine: WorkingSetCache::new(cache_cfg),
            });
            let fine_bpg = self.store.fine_bytes_per_gaussian();
            let coarse_bpg = self.store.coarse_bytes_per_gaussian();
            // Each tier's records live in their own address region past
            // the tier-0 fine column, mirroring the v3 scene image's
            // column order — so tiers never alias in the fine cache.
            let mut tier_base = [0u64; MAX_TIERS];
            let mut tier_width = [0u64; MAX_TIERS];
            tier_width[0] = fine_bpg;
            let mut base = self.store.fine_column_bytes();
            for tt in 0..self.store.tier_count() {
                tier_base[tt + 1] = base;
                tier_width[tt + 1] = self.store.tier_record_bytes(tt);
                base += self.store.tier_column_bytes(tt);
            }
            let mut rep = CacheReport::default();
            let mut t = 0usize;
            for chunk_scratch in &groups[..chunks] {
                for op in &chunk_scratch.trace {
                    match *op {
                        TraceOp::Coarse(vid) => {
                            let slots = self.store.slots_of(vid);
                            let addr = slots.start as u64 * coarse_bpg;
                            let bytes = (slots.end - slots.start) as u64 * coarse_bpg;
                            let o = sim.coarse.access(addr, bytes, &mut rep.coarse);
                            ledger.note_hit(Stage::VoxelCoarse, Direction::Read, o.hit_bytes);
                            ledger.note_dram(Stage::VoxelCoarse, Direction::Read, o.fill_bytes);
                            let w = &mut workload.tiles[t];
                            w.coarse_hit_bytes += o.hit_bytes;
                            w.coarse_dram_bytes += o.fill_bytes;
                        }
                        TraceOp::Fine(slot) => {
                            let o =
                                sim.fine
                                    .access(slot as u64 * fine_bpg, fine_bpg, &mut rep.fine);
                            ledger.note_hit(Stage::VoxelFine, Direction::Read, o.hit_bytes);
                            ledger.note_dram(Stage::VoxelFine, Direction::Read, o.fill_bytes);
                            ledger.note_tier_dram(0, o.fill_bytes);
                            let w = &mut workload.tiles[t];
                            w.fine_hit_bytes += o.hit_bytes;
                            w.fine_dram_bytes += o.fill_bytes;
                            w.fine_tier_dram_bytes[0] += o.fill_bytes;
                        }
                        TraceOp::TierFine { tier, slot } => {
                            let tu = tier as usize;
                            let o = sim.fine.access(
                                tier_base[tu] + slot as u64 * tier_width[tu],
                                tier_width[tu],
                                &mut rep.fine,
                            );
                            ledger.note_hit(Stage::VoxelFine, Direction::Read, o.hit_bytes);
                            ledger.note_dram(Stage::VoxelFine, Direction::Read, o.fill_bytes);
                            ledger.note_tier_dram(tu, o.fill_bytes);
                            let w = &mut workload.tiles[t];
                            w.fine_hit_bytes += o.hit_bytes;
                            w.fine_dram_bytes += o.fill_bytes;
                            w.fine_tier_dram_bytes[tu] += o.fill_bytes;
                        }
                        TraceOp::GroupEnd => t += 1,
                    }
                }
            }
            debug_assert_eq!(t, n_groups, "trace group markers out of sync");
            rep
        });

        // Per-tier usage: voxel assignments from the serial pre-pass, byte
        // counters from the merged ledger's tier lanes.
        let mut tiers = TierUsageReport::default();
        match tmap {
            Some(m) => {
                for &tt in m {
                    tiers.voxels[tt as usize] += 1;
                }
            }
            None => tiers.voxels[0] = self.grid.voxel_count() as u64,
        }
        tiers.fetched_bytes = out.ledger.tier_demand_all();
        tiers.dram_bytes = out.ledger.tier_dram_all();
        out.tiers = tiers;

        let (ledger, workload) = (&out.ledger, &out.workload);
        debug_assert_eq!(ledger.total(), workload.dram_bytes());
        debug_assert_eq!(
            ledger.dram_total(),
            workload.totals().dram_transaction_bytes()
        );
        debug_assert_eq!(ledger.hit_total(), workload.totals().cache_hit_bytes());
        Ok(())
    }

    /// Renders several views and merges their violation reports — the
    /// aggregate the boundary-aware fine-tuning consumes.
    pub fn render_views(&self, cams: &[Camera]) -> (Vec<StreamingOutput>, ViolationReport) {
        let outputs: Vec<StreamingOutput> = cams.iter().map(|c| self.render(c)).collect();
        let mut merged = ViolationReport::default();
        for o in &outputs {
            merged.merge(&o.violations);
        }
        (outputs, merged)
    }

    /// Fills `map[vid]` with each scene voxel's tier for this frame
    /// (0 = full quality, `t` = extra tier `t - 1`), per
    /// [`StreamingConfig::quality`]. Serial, ascending voxel id; every
    /// float it consumes is a pure per-voxel projection, so the result is
    /// a deterministic function of `(camera, policy, store layout)` —
    /// plus, for [`QualityPolicy::Hysteresis`], the previous frame's map
    /// (`prev`, private to this scene/session), which keeps the result
    /// thread-invariant and solo-identical under shared-store serving.
    fn fill_tier_map(&self, cam: &Camera, map: &mut Vec<u8>, prev: &mut Vec<u8>) {
        // gs-lint: allow(D004) tier count < MAX_TIERS
        let n_tiers = self.store.tier_count() as u8;
        let nv = self.grid.voxel_count();
        map.clear();
        map.resize(nv, 0);
        // Projected screen-space edge of a voxel, in pixels; voxels at or
        // behind the camera plane report an infinite footprint (full
        // quality — their rays never march them anyway).
        let fy = cam.intrinsics.fy;
        let footprint = |v: u32| -> f32 {
            let c = cam.world_to_camera(self.grid.voxel_center(v));
            if c.z > 1e-6 {
                self.config.voxel_size * fy / c.z
            } else {
                f32::INFINITY
            }
        };
        // The SSE rule shared by the plain and hysteresis policies: each
        // halving of the footprint below `thr` drops one more tier.
        let sse_tier = |fp: f32, thr: f32| -> u8 {
            let mut t = 0u8;
            while t < n_tiers && fp < thr * 0.5f32.powi(i32::from(t)) {
                t += 1;
            }
            t
        };
        match self.config.quality {
            QualityPolicy::FullQuality => {}
            QualityPolicy::ForcedTier { tier } => map.fill(tier.min(n_tiers)),
            QualityPolicy::ScreenSpaceError { threshold } => {
                for (v, slot) in map.iter_mut().enumerate() {
                    *slot = sse_tier(footprint(v as u32), threshold);
                }
            }
            QualityPolicy::Hysteresis { threshold, margin } => {
                let m = margin.clamp(0.0, 0.9);
                // First frame of a session (or after `set_quality`): no
                // history, select exactly like plain SSE at the unscaled
                // threshold.
                let has_prev = prev.len() == nv;
                for (v, slot) in map.iter_mut().enumerate() {
                    let fp = footprint(v as u32);
                    *slot = if has_prev {
                        // The margin opens a window: a larger threshold
                        // drops tiers earlier (coarser bound), a smaller
                        // one later (finer bound). The previous tier
                        // persists while it stays inside the window.
                        let finest = sse_tier(fp, threshold * (1.0 - m));
                        let coarsest = sse_tier(fp, threshold * (1.0 + m));
                        prev[v].clamp(finest, coarsest)
                    } else {
                        sse_tier(fp, threshold)
                    };
                }
                prev.clear();
                prev.extend_from_slice(map);
            }
            QualityPolicy::ByteBudget { bytes } => {
                // Voxels claim budget in descending-footprint order (voxel
                // id breaks ties), each taking the finest tier whose
                // whole-voxel fine cost still fits.
                // gs-lint: allow(D004) voxel count fits u32 (grid ids are u32)
                let mut order: Vec<u32> = (0..nv as u32).collect();
                order.sort_unstable_by(|&a, &b| {
                    footprint(b)
                        .total_cmp(&footprint(a))
                        .then_with(|| a.cmp(&b))
                });
                let fine_bpg = self.store.fine_bytes_per_gaussian();
                let cost = |v: u32, t: u8| -> u64 {
                    if t == 0 {
                        self.store.slots_of(v).len() as u64 * fine_bpg
                    } else {
                        let tr = self.store.tier_slots_of(usize::from(t) - 1, v);
                        tr.len() as u64 * self.store.tier_record_bytes(usize::from(t) - 1)
                    }
                };
                let mut remaining = bytes;
                for &v in &order {
                    let chosen = (0..=n_tiers)
                        .find(|&t| cost(v, t) <= remaining)
                        .unwrap_or(n_tiers);
                    remaining = remaining.saturating_sub(cost(v, chosen));
                    map[v as usize] = chosen;
                }
            }
        }
    }

    /// Renders one pixel group into `pixels` (a `group_size²` buffer from
    /// the frame arena), using `scratch`'s reusable buffers; all Gaussian
    /// fetches go through `path` and are metered into `scratch.ledger`.
    /// Returns the group's workload (byte counters derived from the
    /// ledger's deltas over this group) and its out-of-order blend count;
    /// violating Gaussian ids are appended to `scratch.violating`.
    ///
    /// When `pool` is given, the DDA ray grid fans out across its workers
    /// in contiguous ray-index chunks; the CSR and ordering inputs walk
    /// the chunks in deterministic ray order, so the result is
    /// bit-identical to the serial walk for any worker or chunk count.
    #[allow(clippy::too_many_arguments)]
    fn render_group_into(
        &self,
        cam: &Camera,
        gx: u32,
        gy: u32,
        width: u32,
        height: u32,
        path: &FetchPath<'_>,
        kernels: PayloadKernels,
        tier_map: Option<&[u8]>,
        scratch: &mut GroupScratch,
        pixels: &mut [Vec3],
        pool: Option<&mut WorkerPool>,
    ) -> (TileWorkload, u64) {
        let gsz = self.config.group_size;
        let rect = TileRect::of_tile(gx, gy, gsz, width, height);
        let mut w = TileWorkload::default();
        let mut violating_blends = 0u64;
        let GroupScratch {
            ray_chunks,
            csr,
            order,
            order_out,
            mask,
            survivors,
            splats,
            blend,
            violating,
            ledger,
            trace,
            degradation,
            error,
        } = scratch;
        // Global index of this group, for deterministic first-error
        // selection across worker chunks.
        let group_index = (gy * width.div_ceil(gsz) + gx) as usize;
        // With a cache configured, coarse/fine fetches are recorded in the
        // trace and their DRAM/hit accounting happens in the frame-end
        // replay; without one, each fetch is its own burst-rounded DRAM
        // transaction, metered right here.
        let cached = self.config.cache.is_some();
        // One knob: `validated()` already copied a configured cache's
        // line-fill size into `burst_bytes`.
        let burst = self.config.burst_bytes;
        // The worker ledger accumulates across groups; this group's byte
        // counters are the deltas over these baselines.
        let base_coarse = ledger.get(Stage::VoxelCoarse, Direction::Read);
        let base_fine = ledger.get(Stage::VoxelFine, Direction::Read);
        let base_pixel = ledger.get(Stage::PixelOut, Direction::Write);
        let base_coarse_dram = ledger.dram(Stage::VoxelCoarse, Direction::Read);
        let base_fine_dram = ledger.dram(Stage::VoxelFine, Direction::Read);
        let base_pixel_dram = ledger.dram(Stage::PixelOut, Direction::Write);
        let base_tier = ledger.tier_demand_all();
        let base_tier_dram = ledger.tier_dram_all();

        // --- VSU: ray sampling + voxel ordering --------------------------
        let (dx, dy, dz) = self.grid.dims();
        let max_steps = 3 * (dx + dy + dz) + 6;
        let stride = self.config.ray_stride;
        // Integer pixel bounds, derived once from the rect (the old loop
        // compared a `u32` counter against the `f32` edges per step).
        let (px0, py0, px1, py1) = rect.pixel_bounds(width, height);
        let nx = (px1 - px0).div_ceil(stride);
        let ny = (py1 - py0).div_ceil(stride);
        let n_rays = nx as usize * ny as usize;
        // DDA over the ray grid: serial into chunk 0, or fanned out over
        // the pool in contiguous ray-index chunks (rays are independent;
        // everything downstream walks the chunks in ray order, so the
        // split is invisible to the output).
        let ray_jobs = pool
            .as_ref()
            .map_or(1, |p| p.size().clamp(1, n_rays.max(1)));
        if ray_chunks.len() < ray_jobs {
            ray_chunks.resize_with(ray_jobs, RayChunk::default);
        }
        let per = n_rays.div_ceil(ray_jobs);
        let grid = &self.grid;
        // Kernel selection is a per-group fn-pointer / branch, not a code
        // path split: everything around the two kernels is shared, which
        // is what makes the production/reference comparison meaningful.
        let dda: fn(&VoxelGrid, &gs_core::geom::Ray, u32, &mut Vec<u32>) -> u32 = match kernels {
            PayloadKernels::Production => traverse_append,
            PayloadKernels::Reference => crate::dda::reference::traverse_append,
        };
        let fill = |chunk: &mut RayChunk, j: usize| {
            let r0 = (j * per).min(n_rays);
            let r1 = ((j + 1) * per).min(n_rays);
            chunk.base = r0 as u32;
            chunk.voxels.clear();
            chunk.ends.clear();
            chunk.steps = 0;
            for r in r0..r1 {
                let px = px0 + (r as u32 % nx) * stride;
                let py = py0 + (r as u32 / nx) * stride;
                let ray = cam.pixel_ray(px as f32 + 0.5, py as f32 + 0.5);
                chunk.steps += dda(grid, &ray, max_steps, &mut chunk.voxels) as u64;
                chunk.ends.push(chunk.voxels.len() as u32);
            }
        };
        match pool {
            Some(pool) if ray_jobs > 1 => {
                let base = ray_chunks.as_mut_ptr() as usize;
                pool.run(ray_jobs, |j| {
                    // SAFETY: chunk slot `j` is written by exactly one job,
                    // and `ray_chunks` outlives `pool.run`, which blocks
                    // until every job finished.
                    let chunk = unsafe { &mut *(base as *mut RayChunk).add(j) };
                    fill(chunk, j);
                });
            }
            _ => fill(&mut ray_chunks[0], 0),
        }
        let chunks_live = &ray_chunks[..ray_jobs];
        w.rays = n_rays as u32;
        for c in chunks_live {
            w.dda_steps += c.steps;
        }

        // voxel → pixel lists as a counting-sort CSR over epoch-remapped
        // dense voxel ids (replaces the seed's per-group hash map).
        csr.build(chunks_live, nx, stride, gsz);

        let order_stats = topological_order_into(
            chunks_live.iter().flat_map(|c| c.ray_slices()),
            |v| cam.world_to_camera(self.grid.voxel_center(v)).z,
            order,
            order_out,
        );
        w.voxels_intersected = order_out.len() as u32;
        w.dag_edges = order_stats.edges;
        w.cycle_breaks = order_stats.cycle_breaks;
        w.order_ops = order_stats.ops;

        // --- per-voxel streaming ------------------------------------------
        let fine_bpg = self.store.fine_bytes_per_gaussian();
        let coarse_bpg = self.store.coarse_bytes_per_gaussian();

        blend.reset(rect, gsz, self.config.voxel_size);
        mask.prepare(gsz, stride);
        for &vid in order_out.iter() {
            if blend.live == 0 {
                break; // every pixel saturated: stop streaming voxels
            }
            // The voxel's pixel mask: pixels whose rays intersect it
            // (dilated to cover strided sampling). The mask gates the
            // early fetch-skip and the *violation metric* — splats still
            // blend into every covered pixel of the group, as the paper's
            // render array does. Dilation ORs each pixel's precomputed
            // word spans; the live test is one `mask & !done` pass over
            // the packed words instead of a byte-per-pixel scan.
            mask.begin_voxel();
            for &pi in csr.pixels_of(vid) {
                mask.cover(pi);
            }
            if !mask.any_live(&blend.done_words) {
                continue;
            }
            let count = self.store.slots_of(vid).len() as u64;

            // Phase 1: coarse filter — streams the voxel's first-half
            // column (16 B/Gaussian burst, metered by the fetch).
            // Survivors are store *slots* (voxel-contiguous positions);
            // `store.id_of` maps a slot back to its global Gaussian id.
            // Counters and the trace/DRAM meter run only after the fetch
            // succeeds, so a skipped voxel leaves no trace — all ledger
            // adds are commutative sums and the trace-op order is
            // unchanged, keeping fault-free frames bit-identical to the
            // pre-fault-path renderer.
            survivors.clear();
            match path {
                FetchPath::Store => {
                    let column = match self.store.try_fetch_coarse(vid, ledger) {
                        Ok(column) => column,
                        Err(e) => {
                            if self.config.degrade_on_fault {
                                degradation.voxels_skipped += 1;
                                continue;
                            }
                            if error.is_none() {
                                *error = Some((group_index, e));
                            }
                            break;
                        }
                    };
                    w.voxels_processed += 1;
                    w.gaussians_streamed += count;
                    // One whole-voxel coarse burst: trace it for the cache
                    // replay, or meter it as an uncached DRAM transaction.
                    if cached {
                        trace.push(TraceOp::Coarse(vid));
                    } else {
                        ledger.note_dram(
                            Stage::VoxelCoarse,
                            Direction::Read,
                            round_to_burst(count * coarse_bpg, burst),
                        );
                    }
                    if self.config.use_coarse_filter {
                        survivors.extend(column.filter_map(|(slot, pos, s_max)| {
                            coarse_test(cam, pos, s_max, &rect).map(|_| slot)
                        }));
                    } else {
                        // No CGF: the whole record is streamed for every
                        // Gaussian.
                        survivors.extend(column.map(|(slot, _, _)| slot));
                    }
                }
                FetchPath::CloudTwin { .. } => {
                    w.voxels_processed += 1;
                    w.gaussians_streamed += count;
                    if cached {
                        trace.push(TraceOp::Coarse(vid));
                    } else {
                        ledger.note_dram(
                            Stage::VoxelCoarse,
                            Direction::Read,
                            round_to_burst(count * coarse_bpg, burst),
                        );
                    }
                    ledger.add(Stage::VoxelCoarse, Direction::Read, count * coarse_bpg);
                    let slots = self.store.slots_of(vid);
                    if self.config.use_coarse_filter {
                        survivors.extend(slots.filter(|&slot| {
                            let g = &self.source.as_slice()[self.store.id_of(slot) as usize];
                            coarse_test(cam, g.pos, g.max_scale(), &rect).is_some()
                        }));
                    } else {
                        survivors.extend(slots);
                    }
                }
            }
            w.coarse_survivors += survivors.len() as u64;

            // Phase 2: fine filter — fetches (and for VQ, decodes) each
            // survivor's second-half record, metered per record. A record
            // whose page is unavailable degrades to its coarse
            // approximation (grey isotropic stand-in at the filter's
            // position/extent) or is dropped — never a panic.
            splats.clear();
            let fine_dram_rec = round_to_burst(fine_bpg, burst);
            let tier = tier_map.map_or(0usize, |m| usize::from(m[vid as usize]));
            let mut abort = false;
            if tier == 0 {
                for &slot in survivors.iter() {
                    let gi = self.store.id_of(slot);
                    let g: Gaussian = match path {
                        FetchPath::Store => match self.store.try_fetch_fine(slot, ledger) {
                            Ok(g) => {
                                // Each record is one scattered fetch: traced
                                // for the cache replay, or one burst-rounded
                                // DRAM transaction.
                                if cached {
                                    trace.push(TraceOp::Fine(slot));
                                } else {
                                    ledger.note_dram(
                                        Stage::VoxelFine,
                                        Direction::Read,
                                        fine_dram_rec,
                                    );
                                    ledger.note_tier_dram(0, fine_dram_rec);
                                }
                                g
                            }
                            Err(e) => {
                                if !self.config.degrade_on_fault {
                                    if error.is_none() {
                                        *error = Some((group_index, e));
                                    }
                                    abort = true;
                                    break;
                                }
                                match self.store.try_coarse_of(slot) {
                                    Ok((pos, s_max)) => {
                                        degradation.fine_degraded += 1;
                                        Gaussian::isotropic(
                                            pos,
                                            s_max,
                                            Vec3::new(0.5, 0.5, 0.5),
                                            0.5,
                                        )
                                    }
                                    Err(_) => {
                                        degradation.fine_skipped += 1;
                                        continue;
                                    }
                                }
                            }
                        },
                        FetchPath::CloudTwin { render } => {
                            if cached {
                                trace.push(TraceOp::Fine(slot));
                            } else {
                                ledger.note_dram(Stage::VoxelFine, Direction::Read, fine_dram_rec);
                                ledger.note_tier_dram(0, fine_dram_rec);
                            }
                            ledger.add(Stage::VoxelFine, Direction::Read, fine_bpg);
                            ledger.note_tier(0, fine_bpg);
                            render.as_slice()[gi as usize].clone()
                        }
                    };
                    if let Some(s) = fine_test(cam, &g, &rect, self.config.sh_degree) {
                        splats.push((gi, s));
                    }
                }
            } else {
                // LOD path (tier map is only ever built for the store
                // fetch path): walk the ascending survivors against the
                // voxel's ascending tier slots with a two-pointer merge —
                // survivors the tier pruned fetch nothing and vanish from
                // the frame, the rest fetch the tier's narrower record.
                let t = tier - 1;
                let twidth = self.store.tier_record_bytes(t);
                let tier_dram_rec = round_to_burst(twidth, burst);
                let trange = self.store.tier_slots_of(t, vid);
                let mut ts = trange.start;
                let te = trange.end;
                for &slot in survivors.iter() {
                    while ts < te && self.store.tier_global_slot(t, ts) < slot {
                        ts += 1;
                    }
                    if ts >= te || self.store.tier_global_slot(t, ts) != slot {
                        continue; // pruned at this tier
                    }
                    let tslot = ts;
                    ts += 1;
                    let gi = self.store.id_of(slot);
                    let g: Gaussian = match self.store.try_fetch_tier_fine(t, tslot, ledger) {
                        Ok(g) => {
                            if cached {
                                trace.push(TraceOp::TierFine {
                                    // gs-lint: allow(D004) tier index < MAX_TIERS
                                    tier: tier as u8,
                                    slot: tslot,
                                });
                            } else {
                                ledger.note_dram(Stage::VoxelFine, Direction::Read, tier_dram_rec);
                                ledger.note_tier_dram(tier, tier_dram_rec);
                            }
                            g
                        }
                        Err(e) => {
                            if !self.config.degrade_on_fault {
                                if error.is_none() {
                                    *error = Some((group_index, e));
                                }
                                abort = true;
                                break;
                            }
                            match self.store.try_coarse_of(slot) {
                                Ok((pos, s_max)) => {
                                    degradation.fine_degraded += 1;
                                    Gaussian::isotropic(pos, s_max, Vec3::new(0.5, 0.5, 0.5), 0.5)
                                }
                                Err(_) => {
                                    degradation.fine_skipped += 1;
                                    continue;
                                }
                            }
                        }
                    };
                    if let Some(s) = fine_test(cam, &g, &rect, self.config.sh_degree) {
                        splats.push((gi, s));
                    }
                }
            }
            if abort {
                break;
            }
            w.fine_survivors += splats.len() as u64;
            w.max_sort_batch = w.max_sort_batch.max(splats.len() as u32);

            // In-voxel depth sort (the bitonic sorter's job).
            splats.sort_unstable_by(|a, b| a.1.depth.total_cmp(&b.1.depth));

            // Blend into the whole group; violations are counted on the
            // masked (ray-intersecting) pixels only.
            for (gi, s) in splats.iter() {
                let frag = match kernels {
                    PayloadKernels::Production => blend.blend(s, &mask.words),
                    PayloadKernels::Reference => blend.blend_reference(s, &mask.words),
                };
                w.blend_lanes += frag.lanes;
                w.blend_fragments += frag.blended;
                if frag.violations > 0 {
                    violating.push(*gi);
                    violating_blends += frag.violations;
                }
                if blend.live == 0 {
                    break;
                }
            }
        }

        // Final pixel writeback (RGBA f32): one contiguous burst-rounded
        // DRAM transaction, metered like every other byte (never cached).
        let live_pixels = ((rect.x1 - rect.x0) * (rect.y1 - rect.y0)) as u64;
        ledger.add_transfer(Stage::PixelOut, Direction::Write, live_pixels * 16, burst);
        if cached {
            trace.push(TraceOp::GroupEnd);
        }

        // The group's byte counters are read back from the ledger — the
        // ledger is the source of truth, the workload a per-tile view.
        // (With a cache, the coarse/fine DRAM deltas are zero here; the
        // frame-end replay fills them in per group.)
        w.coarse_bytes = ledger.get(Stage::VoxelCoarse, Direction::Read) - base_coarse;
        w.fine_bytes = ledger.get(Stage::VoxelFine, Direction::Read) - base_fine;
        w.pixel_bytes = ledger.get(Stage::PixelOut, Direction::Write) - base_pixel;
        w.coarse_dram_bytes = ledger.dram(Stage::VoxelCoarse, Direction::Read) - base_coarse_dram;
        w.fine_dram_bytes = ledger.dram(Stage::VoxelFine, Direction::Read) - base_fine_dram;
        w.pixel_dram_bytes = ledger.dram(Stage::PixelOut, Direction::Write) - base_pixel_dram;
        let tier_now = ledger.tier_demand_all();
        let tier_dram_now = ledger.tier_dram_all();
        for tt in 0..MAX_TIERS {
            w.fine_tier_bytes[tt] = tier_now[tt] - base_tier[tt];
            w.fine_tier_dram_bytes[tt] = tier_dram_now[tt] - base_tier_dram[tt];
        }

        blend.finish(self.config.background, pixels);
        (w, violating_blends)
    }
}

/// Frame-persistent render state: the worker pool plus the frame arena
/// (per-group outputs and per-chunk scratch), behind a mutex so `render`
/// stays `&self`. Concurrent renders on one scene serialize; clone the
/// scene for independent parallel use.
#[derive(Debug, Default)]
struct StreamScratch {
    pool: Option<WorkerPool>,
    /// All groups' pixel partials, `group_size²` each, group-major.
    pixels: Vec<Vec3>,
    /// Per-group workload records.
    workloads: Vec<TileWorkload>,
    /// Per-group out-of-order blend counts.
    vblends: Vec<u64>,
    /// Per-chunk reusable working state.
    groups: Vec<GroupScratch>,
    /// Frame-persistent working-set cache simulation (lazily built from
    /// [`StreamingConfig::cache`]); carries state across frames so
    /// trajectories exercise temporal locality.
    cache: Option<FrameCacheSim>,
    /// This frame's per-voxel tier assignment (serial pre-pass output;
    /// empty under [`QualityPolicy::FullQuality`] and on tierless scenes).
    tier_map: Vec<u8>,
    /// The previous frame's tier map, feeding
    /// [`QualityPolicy::Hysteresis`]'s enter/exit window. Per-session
    /// (forks start empty), so hysteresis depends only on this session's
    /// own frame sequence. Empty before the first tiered frame and after
    /// [`StreamingScene::set_quality`].
    prev_tiers: Vec<u8>,
}

/// One working-set cache per cached pipeline stage.
#[derive(Debug)]
struct FrameCacheSim {
    coarse: WorkingSetCache,
    fine: WorkingSetCache,
}

/// One recorded fetch of a group's coarse/fine phases, replayed through
/// the cache simulation in deterministic group order at frame end.
#[derive(Copy, Clone, Debug)]
enum TraceOp {
    /// A whole-voxel first-half burst.
    Coarse(u32),
    /// One second-half record fetch (tier 0, global slot addressing).
    Fine(u32),
    /// One LOD-tier record fetch: overall tier index (≥ 1) plus the
    /// tier-local slot; the replay addresses it past the tier-0 column so
    /// tiers never alias in the fine cache.
    TierFine {
        /// Overall tier (1.. — tier 0 uses [`TraceOp::Fine`]).
        tier: u8,
        /// Tier-local slot index.
        slot: u32,
    },
    /// Group boundary (advances the per-tile accounting cursor).
    GroupEnd,
}

/// Reusable per-chunk working buffers for [`StreamingScene::render`].
#[derive(Debug, Default)]
struct GroupScratch {
    /// Flat per-job DDA ray chunks (slot 0 serves the serial path); each
    /// holds its rays' voxel lists back to back.
    ray_chunks: Vec<RayChunk>,
    /// voxel → pixel-list CSR over epoch-remapped dense voxel ids
    /// (replaces the seed's `HashMap<u32, Vec<u32>>` + spare-list pool).
    csr: VoxelPixelCsr,
    /// Reusable topological-ordering state (zero steady-state allocations).
    order: OrderScratch,
    /// The current group's voxel order (reused across groups).
    order_out: Vec<u32>,
    /// Packed per-pixel ray-intersection mask of the current voxel, with
    /// the precomputed stride-dilation span table.
    mask: MaskScratch,
    /// Coarse-filter survivors of the current voxel.
    survivors: Vec<u32>,
    /// Fine-filter survivors (with projected splats) of the current voxel.
    splats: Vec<(u32, FineSplat)>,
    /// Persistent partial-pixel state across the group's voxels.
    blend: GroupBlender,
    /// Gaussians blended out of depth order (accumulated per chunk).
    violating: Vec<u32>,
    /// This worker's traffic ledger: every store fetch and pixel writeback
    /// of its groups, merged into the frame ledger (in chunk order) after
    /// the parallel section — byte accounting without a shared lock.
    ledger: TrafficLedger,
    /// This worker's recorded coarse/fine fetch trace (group-delimited),
    /// replayed through the frame's cache simulation in deterministic
    /// group order. Empty when no cache is configured.
    trace: Vec<TraceOp>,
    /// This worker's per-voxel degradation counters, summed into the
    /// frame's [`DegradationReport`] after the parallel section.
    degradation: DegradationReport,
    /// First store fault this worker hit with degradation disabled,
    /// tagged with its global group index so the frame surfaces the
    /// error the serial walk would have hit first.
    error: Option<(usize, StoreError)>,
}

/// One DDA job's contiguous slice of a group's ray grid: the rays' voxel
/// lists appended back to back, with per-ray end offsets. Global ray index
/// `base + i` recovers each ray's pixel, so chunks carry no per-ray
/// metadata and a chunk boundary is invisible to the merged walk.
///
/// Public (but doc-hidden) so the `streaming` bench can drive the real
/// group-loop mechanism on captured ray inputs.
#[doc(hidden)]
#[derive(Debug, Default)]
pub struct RayChunk {
    /// Concatenated voxel lists of this chunk's rays, front-to-back.
    voxels: Vec<u32>,
    /// End offset of ray `i`'s list within `voxels`.
    ends: Vec<u32>,
    /// DDA steps taken by this chunk's rays.
    steps: u64,
    /// Global index of the chunk's first ray.
    base: u32,
}

impl RayChunk {
    /// An empty chunk starting at global ray index 0.
    pub fn new() -> RayChunk {
        RayChunk::default()
    }

    /// Appends one ray's voxel list (bench construction; the renderer
    /// appends via [`traverse_append`] directly).
    pub fn push_ray(&mut self, voxels: &[u32]) {
        self.voxels.extend_from_slice(voxels);
        self.ends.push(self.voxels.len() as u32);
    }

    /// The chunk's per-ray voxel slices, in ray order.
    pub fn ray_slices(&self) -> impl Iterator<Item = &[u32]> + '_ {
        let mut start = 0usize;
        self.ends.iter().map(move |&e| {
            let s = &self.voxels[start..e as usize];
            start = e as usize;
            s
        })
    }
}

/// The group's voxel → pixel-list map as a two-pass counting-sort CSR over
/// epoch-remapped dense voxel ids (the [`OrderScratch`] trick): pass one
/// interns voxel ids and counts incidences, a prefix sum sizes the lists,
/// pass two scatters pixel indices in global ray order — so each voxel's
/// pixel list is identical to what the seed's hash map accumulated, with
/// no hashing, no per-voxel `Vec`s, and zero steady-state allocations.
#[doc(hidden)]
#[derive(Debug, Default)]
pub struct VoxelPixelCsr {
    /// Voxel id → dense local index; valid only when `stamp[id] == epoch`.
    local: Vec<u32>,
    /// Epoch stamp per voxel id slot.
    stamp: Vec<u32>,
    /// Current group's epoch.
    epoch: u32,
    /// Per-local incidence counts (pass one).
    counts: Vec<u32>,
    /// CSR offsets into `pixels` (length `n_voxels + 1`).
    off: Vec<u32>,
    /// Scatter cursors (pass two).
    cursor: Vec<u32>,
    /// Concatenated per-voxel pixel indices, in ray order per voxel.
    pixels: Vec<u32>,
}

impl VoxelPixelCsr {
    /// A fresh CSR scratch (buffers grow on first use).
    pub fn new() -> VoxelPixelCsr {
        VoxelPixelCsr::default()
    }

    /// Rebuilds the CSR from the group's ray chunks. `nx`/`stride`/`gsz`
    /// recover each ray's group-local pixel index from its global index.
    pub fn build(&mut self, chunks: &[RayChunk], nx: u32, stride: u32, gsz: u32) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // u32 epoch wrapped: old stamps could alias. Reset once.
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.counts.clear();
        let mut total = 0usize;
        // Pass one: intern each voxel id on first sight, count incidences.
        // (A ray visits a voxel at most once — convex cell walk — so every
        // (ray, voxel) pair is one incidence, exactly like the seed's
        // per-ray hash-map pushes.)
        for c in chunks {
            for &v in &c.voxels {
                let slot = v as usize;
                if slot >= self.local.len() {
                    self.local.resize(slot + 1, 0);
                    self.stamp.resize(slot + 1, 0);
                }
                let l = if self.stamp[slot] == self.epoch {
                    self.local[slot]
                } else {
                    let l = self.counts.len() as u32;
                    self.stamp[slot] = self.epoch;
                    self.local[slot] = l;
                    self.counts.push(0);
                    l
                };
                self.counts[l as usize] += 1;
                total += 1;
            }
        }
        // Prefix sum → offsets; cursors start at each list's offset.
        self.off.clear();
        self.off.push(0);
        let mut acc = 0u32;
        for &c in &self.counts {
            acc += c;
            self.off.push(acc);
        }
        self.cursor.clear();
        self.cursor
            .extend_from_slice(&self.off[..self.counts.len()]);
        // Pass two: scatter pixel indices in global ray order, so each
        // voxel's list is sorted exactly like the seed's push order.
        self.pixels.clear();
        self.pixels.resize(total, 0);
        for c in chunks {
            let mut s = 0usize;
            for (i, &e) in c.ends.iter().enumerate() {
                let r = c.base + i as u32;
                let pix = (r / nx) * stride * gsz + (r % nx) * stride;
                for &v in &c.voxels[s..e as usize] {
                    let l = self.local[v as usize] as usize;
                    self.pixels[self.cursor[l] as usize] = pix;
                    self.cursor[l] += 1;
                }
                s = e as usize;
            }
        }
    }

    /// Group-local pixel indices whose rays intersect voxel `vid`.
    pub fn pixels_of(&self, vid: u32) -> &[u32] {
        debug_assert_eq!(
            self.stamp[vid as usize], self.epoch,
            "voxel {vid} was not interned by this group's rays"
        );
        let l = self.local[vid as usize] as usize;
        &self.pixels[self.off[l] as usize..self.off[l + 1] as usize]
    }
}

/// The current voxel's ray-pixel mask as packed `u64` words, plus the
/// precomputed per-pixel dilation spans: pixel `p`'s span list ORs the
/// whole clipped stride×stride block anchored at `p` into the words (one
/// span per covered mask row segment — a single span at stride 1), so
/// strided sampling costs O(stride) word ORs per pixel instead of the
/// seed's stride² scalar stores, and the mask itself is `gsz²/64` words
/// instead of `gsz²` bytes.
#[doc(hidden)]
#[derive(Debug, Default)]
pub struct MaskScratch {
    /// Geometry the span table was built for (rebuilt only on change —
    /// never, in steady state).
    gsz: u32,
    stride: u32,
    /// Per-pixel span ranges into `spans` (length `gsz² + 1`).
    span_off: Vec<u32>,
    /// `(word index, bits)` covering each pixel's dilated block.
    spans: Vec<(u32, u64)>,
    /// The current voxel's mask words (`(gsz² + 63) / 64` of them).
    words: Vec<u64>,
}

impl MaskScratch {
    /// A fresh mask scratch (span table built on first `prepare`).
    pub fn new() -> MaskScratch {
        MaskScratch::default()
    }

    /// Builds (or keeps) the span table for this group geometry and sizes
    /// the mask words.
    pub fn prepare(&mut self, gsz: u32, stride: u32) {
        if self.gsz == gsz && self.stride == stride {
            return;
        }
        self.gsz = gsz;
        self.stride = stride;
        let bits = gsz as usize * gsz as usize;
        self.words.clear();
        self.words.resize(bits.div_ceil(64), 0);
        self.span_off.clear();
        self.spans.clear();
        self.span_off.push(0);
        for by in 0..gsz {
            for bx in 0..gsz {
                let rows = stride.min(gsz - by);
                let run = stride.min(gsz - bx) as u64;
                for my in by..by + rows {
                    let mut s = (my * gsz + bx) as u64;
                    let mut remaining = run;
                    while remaining > 0 {
                        let off = s % 64;
                        let take = (64 - off).min(remaining);
                        let bits = if take == 64 {
                            !0u64
                        } else {
                            ((1u64 << take) - 1) << off
                        };
                        self.spans.push(((s / 64) as u32, bits));
                        s += take;
                        remaining -= take;
                    }
                }
                self.span_off.push(self.spans.len() as u32);
            }
        }
    }

    /// Clears the mask for the next voxel.
    #[inline]
    pub fn begin_voxel(&mut self) {
        self.words.fill(0);
    }

    /// ORs pixel `pi`'s dilated block into the mask.
    #[inline]
    pub fn cover(&mut self, pi: u32) {
        let (s, e) = (
            self.span_off[pi as usize] as usize,
            self.span_off[pi as usize + 1] as usize,
        );
        for &(w, bits) in &self.spans[s..e] {
            self.words[w as usize] |= bits;
        }
    }

    /// `true` when any masked pixel is not yet done: one `mask & !done`
    /// pass over the packed words (the seed scanned `gsz²` bytes).
    #[inline]
    pub fn any_live(&self, done_words: &[u64]) -> bool {
        self.words.iter().zip(done_words).any(|(m, d)| m & !d != 0)
    }

    /// The packed mask words of the current voxel (for the `payload`
    /// bench's blend replay).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Per-splat blend outcome counters (exposed for the `payload` bench).
#[doc(hidden)]
#[derive(Debug, PartialEq, Eq)]
pub struct FragOutcome {
    /// Guard-passing bbox pixels considered (done or not).
    pub lanes: u64,
    /// Pixels actually blended (`alpha >= ALPHA_EPS`, not saturated).
    pub blended: u64,
    /// Blends that violated front-to-back order beyond the slack.
    pub violations: u64,
}

/// On-chip partial pixel state for one group, persisting across voxels.
/// Reusable: [`GroupBlender::reset`] re-initializes the buffers in place,
/// keeping their allocations across groups and frames. Saturation is a
/// packed `u64` bitset (`done_words`), shared with the per-voxel live test
/// (`mask & !done`); blending arithmetic is bit-identical to the seed's
/// byte-per-pixel version — only the bookkeeping representation changed.
///
/// [`GroupBlender::blend`] is the lane-wise production kernel;
/// [`GroupBlender::blend_reference`] keeps the original pixel-at-a-time
/// loop verbatim as its bit-exact twin (`PartialEq` compares the full
/// pixel state, so the `payload` bench can assert replayed equality).
#[doc(hidden)]
#[derive(Debug, Default, PartialEq)]
pub struct GroupBlender {
    rect: TileRect,
    size: usize,
    violation_slack: f32,
    color: Vec<Vec3>,
    transmittance: Vec<f32>,
    /// Saturated pixels, one bit per group-local pixel index;
    /// out-of-rect pixels start done.
    done_words: Vec<u64>,
    max_depth: Vec<f32>,
    live: u32,
}

impl GroupBlender {
    #[inline]
    fn is_done(&self, pi: usize) -> bool {
        self.done_words[pi >> 6] >> (pi & 63) & 1 != 0
    }

    #[inline]
    fn set_done(&mut self, pi: usize) {
        self.done_words[pi >> 6] |= 1 << (pi & 63);
    }

    /// Re-initializes the blender for a group (buffers reused in place).
    pub fn reset(&mut self, rect: TileRect, group_size: u32, voxel_size: f32) {
        let n = group_size as usize;
        self.rect = rect;
        self.size = n;
        self.violation_slack = VIOLATION_VOXEL_FRACTION * voxel_size;
        self.color.clear();
        self.color.resize(n * n, Vec3::ZERO);
        self.transmittance.clear();
        self.transmittance.resize(n * n, 1.0);
        self.max_depth.clear();
        self.max_depth.resize(n * n, 0.0);
        self.done_words.clear();
        self.done_words.resize((n * n).div_ceil(64), 0);
        let mut live = 0u32;
        for ly in 0..n {
            for lx in 0..n {
                let px = rect.x0 + lx as f32;
                let py = rect.y0 + ly as f32;
                if px >= rect.x1 || py >= rect.y1 {
                    self.set_done(ly * n + lx);
                } else {
                    live += 1;
                }
            }
        }
        self.live = live;
    }

    /// Lane-wise production blend kernel: walks the row's `!done` words
    /// directly (iterating set bits instead of testing pixels one at a
    /// time), hoists the conic's per-row subterms
    /// ([`gs_core::ewa::RowFalloff`]), and skips the `exp` for pixels whose
    /// falloff power is provably below the `alpha < ALPHA_EPS` cutoff
    /// ([`gs_core::ewa::cull_power_threshold`]).
    ///
    /// Byte-exactness vs [`GroupBlender::blend_reference`]:
    ///
    /// - Per-pixel state is independent (each bbox pixel is visited at
    ///   most once per splat), so skipping done pixels by bitmask instead
    ///   of a per-pixel `continue` reaches the same pixels in the same
    ///   ascending order with the same values.
    /// - `lanes` counts every guard-passing bbox pixel, done or not; the
    ///   guards are separable per axis, so the count is the product of the
    ///   clamped per-axis ranges — computed arithmetically, not by loop.
    /// - The per-pixel alpha/violation/transmittance math is the original
    ///   operation sequence: `RowFalloff::power_at` reproduces the scalar
    ///   `falloff` exponent bit-for-bit (hoisting caches identical
    ///   subtrees, never re-associates), and the exp-cull only skips
    ///   pixels the scalar path would have dropped at `alpha < ALPHA_EPS`
    ///   anyway (no state change, not counted as blended).
    pub fn blend(&mut self, s: &FineSplat, mask: &[u64]) -> FragOutcome {
        let n = self.size;
        let mut out = FragOutcome {
            lanes: 0,
            blended: 0,
            violations: 0,
        };
        // Restrict to the splat's bbox within the group (same float ops as
        // the reference twin).
        let x_lo = (s.mean_px.x - s.radius_px).max(self.rect.x0).floor() as i64;
        let x_hi = (s.mean_px.x + s.radius_px).min(self.rect.x1 - 1.0).ceil() as i64;
        let y_lo = (s.mean_px.y - s.radius_px).max(self.rect.y0).floor() as i64;
        let y_hi = (s.mean_px.y + s.radius_px).min(self.rect.y1 - 1.0).ceil() as i64;
        // Clamp to the guard-passing group-local pixel ranges: the twin
        // skips `px < x0 || py < y0` and `lx >= n || ly >= n` per pixel;
        // both conditions are per-axis, so they clamp the ranges instead.
        let (x0, y0) = (self.rect.x0 as i64, self.rect.y0 as i64);
        let lx_lo = (x_lo - x0).max(0);
        let lx_hi = (x_hi - x0).min(n as i64 - 1);
        let ly_lo = (y_lo - y0).max(0);
        let ly_hi = (y_hi - y0).min(n as i64 - 1);
        if lx_lo > lx_hi || ly_lo > ly_hi {
            return out;
        }
        // Every guard-passing bbox pixel is one lane, done or not.
        out.lanes = (lx_hi - lx_lo + 1) as u64 * (ly_hi - ly_lo + 1) as u64;

        let cull = gs_core::ewa::cull_power_threshold(s.opacity, ALPHA_EPS);
        for ly in ly_lo..=ly_hi {
            let dy = (y0 + ly) as f32 + 0.5 - s.mean_px.y;
            let row = gs_core::ewa::RowFalloff::new(s.conic, dy);
            // Walk the set bits of `!done` within this row's lane range.
            let (row_lo, row_hi) = (
                ly as usize * n + lx_lo as usize,
                ly as usize * n + lx_hi as usize,
            );
            for wi in (row_lo >> 6)..=(row_hi >> 6) {
                let mut live = !self.done_words[wi];
                if wi == row_lo >> 6 {
                    live &= !0u64 << (row_lo & 63);
                }
                if wi == row_hi >> 6 {
                    live &= !0u64 >> (63 - (row_hi & 63));
                }
                while live != 0 {
                    let pi = (wi << 6) + live.trailing_zeros() as usize;
                    live &= live - 1;
                    let dx = (x0 + (pi - ly as usize * n) as i64) as f32 + 0.5 - s.mean_px.x;
                    let power = row.power_at(dx);
                    if power < cull {
                        // Guaranteed alpha < ALPHA_EPS: the twin would have
                        // skipped this pixel after the exp — skip before it.
                        continue;
                    }
                    let alpha =
                        (s.opacity * gs_core::ewa::falloff_from_power(power)).min(ALPHA_MAX);
                    if alpha < ALPHA_EPS {
                        continue;
                    }
                    if mask[pi >> 6] >> (pi & 63) & 1 != 0
                        && s.depth + self.violation_slack < self.max_depth[pi]
                    {
                        out.violations += 1;
                    }
                    let t = self.transmittance[pi];
                    self.color[pi] += s.color * (alpha * t);
                    self.transmittance[pi] = t * (1.0 - alpha);
                    self.max_depth[pi] = self.max_depth[pi].max(s.depth);
                    out.blended += 1;
                    if self.transmittance[pi] < TRANSMITTANCE_EPS {
                        self.set_done(pi);
                        self.live -= 1;
                    }
                }
            }
        }
        out
    }

    /// The pre-overhaul pixel-at-a-time blend loop, kept verbatim as the
    /// bit-exact reference twin of [`GroupBlender::blend`].
    pub fn blend_reference(&mut self, s: &FineSplat, mask: &[u64]) -> FragOutcome {
        let n = self.size;
        let mut out = FragOutcome {
            lanes: 0,
            blended: 0,
            violations: 0,
        };
        // Restrict to the splat's bbox within the group.
        let x_lo = (s.mean_px.x - s.radius_px).max(self.rect.x0).floor() as i64;
        let x_hi = (s.mean_px.x + s.radius_px).min(self.rect.x1 - 1.0).ceil() as i64;
        let y_lo = (s.mean_px.y - s.radius_px).max(self.rect.y0).floor() as i64;
        let y_hi = (s.mean_px.y + s.radius_px).min(self.rect.y1 - 1.0).ceil() as i64;
        for py in y_lo..=y_hi {
            for px in x_lo..=x_hi {
                if px < self.rect.x0 as i64 || py < self.rect.y0 as i64 {
                    continue;
                }
                let lx = px as usize - self.rect.x0 as usize;
                let ly = py as usize - self.rect.y0 as usize;
                if lx >= n || ly >= n {
                    continue;
                }
                let pi = ly * n + lx;
                out.lanes += 1;
                if self.is_done(pi) {
                    continue;
                }
                let d = Vec2::new(px as f32 + 0.5 - s.mean_px.x, py as f32 + 0.5 - s.mean_px.y);
                let alpha = (s.opacity * gs_core::ewa::falloff(s.conic, d)).min(ALPHA_MAX);
                if alpha < ALPHA_EPS {
                    continue;
                }
                if mask[pi >> 6] >> (pi & 63) & 1 != 0
                    && s.depth + self.violation_slack < self.max_depth[pi]
                {
                    out.violations += 1;
                }
                let t = self.transmittance[pi];
                self.color[pi] += s.color * (alpha * t);
                self.transmittance[pi] = t * (1.0 - alpha);
                self.max_depth[pi] = self.max_depth[pi].max(s.depth);
                out.blended += 1;
                if self.transmittance[pi] < TRANSMITTANCE_EPS {
                    self.set_done(pi);
                    self.live -= 1;
                }
            }
        }
        out
    }

    /// Count of not-yet-saturated pixels (for the `payload` bench's
    /// early-exit replay).
    pub fn live(&self) -> u32 {
        self.live
    }

    /// Composites the background and writes the group's pixels out.
    pub fn finish(&self, background: Vec3, pixels: &mut [Vec3]) {
        let n = self.size;
        for ly in 0..n {
            for lx in 0..n {
                let pi = ly * n + lx;
                let px = self.rect.x0 + lx as f32;
                let py = self.rect.y0 + ly as f32;
                if px < self.rect.x1 && py < self.rect.y1 {
                    pixels[pi] = self.color[pi] + background * self.transmittance[pi];
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use gs_render::{RenderConfig, TileRenderer};
    use gs_scene::{Gaussian, SceneConfig, SceneKind};

    /// Well-separated tiny Gaussians, each strictly inside its own voxel:
    /// streaming must match the reference renderer almost exactly.
    fn separated_cloud() -> GaussianCloud {
        let mut c = GaussianCloud::new();
        for i in 0..5 {
            for j in 0..4 {
                c.push(Gaussian::isotropic(
                    Vec3::new(i as f32 - 2.0, j as f32 - 1.5, (i + j) as f32 * 0.3),
                    0.05,
                    Vec3::new(0.2 + 0.15 * i as f32, 0.8 - 0.1 * j as f32, 0.5),
                    0.8,
                ));
            }
        }
        c
    }

    fn test_cam() -> Camera {
        Camera::look_at(
            Vec3::new(0.5, 0.3, -8.0),
            Vec3::ZERO,
            Vec3::Y,
            160,
            120,
            0.9,
        )
    }

    #[test]
    fn matches_reference_when_no_gaussian_crosses_voxels() {
        let cloud = separated_cloud();
        let cam = test_cam();
        let reference = TileRenderer::new(RenderConfig::default()).render(&cloud, &cam);
        let streaming = StreamingScene::new(cloud, StreamingConfig::default()).render(&cam);
        let psnr = streaming.image.psnr(&reference.image);
        assert!(psnr > 38.0, "streaming diverged from reference: {psnr} dB");
        assert_eq!(streaming.violations.gaussian_ratio(), 0.0);
    }

    #[test]
    fn real_scene_stays_close_to_reference() {
        let scene = SceneKind::Truck.build(&SceneConfig::tiny());
        let cam = &scene.eval_cameras[0];
        let reference = TileRenderer::new(RenderConfig::default()).render(&scene.trained, cam);
        let cfg = StreamingConfig {
            voxel_size: scene.voxel_size,
            ..Default::default()
        };
        let streaming = StreamingScene::new(scene.trained.clone(), cfg).render(cam);
        let psnr = streaming.image.psnr(&reference.image);
        assert!(
            psnr > 24.0,
            "voxel ordering artifacts too strong: {psnr} dB"
        );
    }

    #[test]
    fn workload_counters_are_consistent() {
        let scene = SceneKind::Lego.build(&SceneConfig::tiny());
        let cfg = StreamingConfig {
            voxel_size: scene.voxel_size,
            ..Default::default()
        };
        let out = StreamingScene::new(scene.trained.clone(), cfg).render(&scene.eval_cameras[0]);
        let t = out.workload.totals();
        assert!(t.gaussians_streamed > 0);
        assert!(t.coarse_survivors <= t.gaussians_streamed);
        assert!(t.fine_survivors <= t.coarse_survivors);
        assert!(t.blend_fragments <= t.blend_lanes);
        assert!(t.voxels_processed as u64 <= t.voxels_intersected as u64);
        assert!(t.coarse_bytes > 0 && t.pixel_bytes > 0);
    }

    #[test]
    fn coarse_filter_reduces_fine_fetches_not_image() {
        let scene = SceneKind::Palace.build(&SceneConfig::tiny());
        let cam = &scene.eval_cameras[0];
        let with = StreamingScene::new(
            scene.trained.clone(),
            StreamingConfig {
                voxel_size: scene.voxel_size,
                ..Default::default()
            },
        )
        .render(cam);
        let without = StreamingScene::new(
            scene.trained.clone(),
            StreamingConfig {
                voxel_size: scene.voxel_size,
                use_coarse_filter: false,
                ..Default::default()
            },
        )
        .render(cam);
        // Filtering must not change the image at all (it only culls
        // Gaussians that cannot touch the group).
        let psnr = with.image.psnr(&without.image);
        assert!(psnr > 60.0, "coarse filter changed the image: {psnr} dB");
        // But it must reduce fine-phase traffic.
        assert!(
            with.workload.totals().fine_bytes < without.workload.totals().fine_bytes,
            "coarse filter saved no traffic"
        );
    }

    #[test]
    fn vq_reduces_fine_bytes() {
        let scene = SceneKind::Lego.build(&SceneConfig::tiny());
        let cam = &scene.eval_cameras[0];
        let raw = StreamingScene::new(
            scene.trained.clone(),
            StreamingConfig {
                voxel_size: scene.voxel_size,
                ..Default::default()
            },
        );
        let vq = StreamingScene::new(
            scene.trained.clone(),
            StreamingConfig {
                voxel_size: scene.voxel_size,
                use_vq: true,
                vq: VqConfig::tiny(),
                ..Default::default()
            },
        );
        let raw_out = raw.render(cam);
        let vq_out = vq.render(cam);
        let raw_fine = raw_out.workload.totals().fine_bytes;
        let vq_fine = vq_out.workload.totals().fine_bytes;
        assert!(
            (vq_fine as f64) < 0.15 * raw_fine as f64,
            "VQ fine bytes {vq_fine} vs raw {raw_fine}"
        );
        // Quality loss from tiny codebooks is bounded.
        let psnr = vq_out.image.psnr(&raw_out.image);
        assert!(psnr > 20.0, "VQ destroyed the image: {psnr} dB");
    }

    #[test]
    fn filter_kill_rate_is_substantial() {
        // The kill rate grows as groups cover less of the frame (the
        // paper's 76.3 % is measured at native resolutions where a 64 px
        // group is ~1 % of the frame; tiny test frames understate it).
        let scene = SceneKind::Train.build(&SceneConfig::tiny());
        let cam = &scene.eval_cameras[0];
        let at_group = |gsz: u32| -> f64 {
            let cfg = StreamingConfig {
                voxel_size: scene.voxel_size,
                group_size: gsz,
                ..Default::default()
            };
            StreamingScene::new(scene.trained.clone(), cfg)
                .render(cam)
                .workload
                .totals()
                .filter_kill_rate()
        };
        let k64 = at_group(64);
        let k16 = at_group(16);
        assert!(
            k64 > 0.2,
            "hierarchical filter killed only {k64} at 64px groups"
        );
        assert!(
            k16 > 0.6,
            "hierarchical filter killed only {k16} at 16px groups"
        );
        assert!(k16 > k64, "smaller groups must filter more aggressively");
    }

    #[test]
    fn violations_appear_with_large_gaussians_and_small_voxels() {
        // Large overlapping Gaussians + small voxels ⇒ ordering violations.
        let mut c = GaussianCloud::new();
        for i in 0..40 {
            let f = i as f32 * 0.13;
            c.push(Gaussian::isotropic(
                Vec3::new(f.sin() * 1.2, f.cos() * 0.9, 0.4 * f),
                0.35,
                Vec3::new(0.5 + 0.4 * f.sin(), 0.4, 0.6),
                0.55,
            ));
        }
        let cam = test_cam();
        let cfg = StreamingConfig {
            voxel_size: 0.5,
            ..Default::default()
        };
        let out = StreamingScene::new(c, cfg).render(&cam);
        assert!(
            out.violations.gaussian_ratio() > 0.0,
            "expected ordering violations with 0.35-scale Gaussians in 0.5 voxels"
        );
    }

    #[test]
    fn render_is_deterministic_across_thread_counts() {
        let scene = SceneKind::Playroom.build(&SceneConfig::tiny());
        let cam = &scene.eval_cameras[0];
        let a = StreamingScene::new(
            scene.trained.clone(),
            StreamingConfig {
                voxel_size: scene.voxel_size,
                threads: 1,
                ..Default::default()
            },
        )
        .render(cam);
        let b = StreamingScene::new(
            scene.trained.clone(),
            StreamingConfig {
                voxel_size: scene.voxel_size,
                threads: 4,
                ..Default::default()
            },
        )
        .render(cam);
        assert_eq!(a.image, b.image);
        assert_eq!(a.workload.totals(), b.workload.totals());
    }

    #[test]
    fn ray_stride_reduces_vsu_work() {
        let scene = SceneKind::Lego.build(&SceneConfig::tiny());
        let cam = &scene.eval_cameras[0];
        let full = StreamingScene::new(
            scene.trained.clone(),
            StreamingConfig {
                voxel_size: scene.voxel_size,
                ray_stride: 1,
                ..Default::default()
            },
        )
        .render(cam);
        let strided = StreamingScene::new(
            scene.trained.clone(),
            StreamingConfig {
                voxel_size: scene.voxel_size,
                ray_stride: 4,
                ..Default::default()
            },
        )
        .render(cam);
        assert!(strided.workload.totals().dda_steps < full.workload.totals().dda_steps / 4);
        // Image stays close (voxel sets rarely change).
        let psnr = strided.image.psnr(&full.image);
        assert!(psnr > 28.0, "stride-4 sampling broke the image: {psnr}");
    }

    #[test]
    fn smaller_groups_stream_more_voxel_traffic() {
        // The group size is the re-streaming knob: 16×16 groups re-fetch
        // each voxel far more often than 64×64 groups.
        let scene = SceneKind::Truck.build(&SceneConfig::tiny());
        let cam = &scene.eval_cameras[0];
        let small = StreamingScene::new(
            scene.trained.clone(),
            StreamingConfig {
                voxel_size: scene.voxel_size,
                group_size: 16,
                ..Default::default()
            },
        )
        .render(cam);
        let large = StreamingScene::new(
            scene.trained.clone(),
            StreamingConfig {
                voxel_size: scene.voxel_size,
                group_size: 64,
                ..Default::default()
            },
        )
        .render(cam);
        assert!(
            small.workload.totals().gaussians_streamed
                > 2 * large.workload.totals().gaussians_streamed,
            "16px groups should re-stream voxels much more"
        );
        // Same image regardless of grouping (up to f32 noise).
        let psnr = small.image.psnr(&large.image);
        assert!(psnr > 35.0, "group size changed the image: {psnr}");
    }

    #[test]
    fn group_partial_state_fits_intermediate_buffer() {
        // 64×64 × 16 B = 64 KB ≤ 89 KB (paper's intermediate SRAM).
        let cfg = StreamingConfig::default();
        assert!(cfg.group_partial_bytes() <= 89 * 1024);
    }

    fn outputs_identical(a: &StreamingOutput, b: &StreamingOutput) {
        assert_eq!(a.image, b.image);
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.ledger, b.ledger);
        assert_eq!(a.cache, b.cache);
        assert_eq!(a.degradation, b.degradation);
    }

    #[test]
    fn store_path_is_byte_identical_to_cloud_twin() {
        // With the legacy loop deleted, the cloud twin (same group loop,
        // different fetch path) is the in-process exactness reference:
        // image, workload, ledger, violations must agree bit-for-bit on
        // raw and VQ stores.
        for kind in [SceneKind::Truck, SceneKind::Lego] {
            let scene = kind.build(&SceneConfig::tiny());
            for use_vq in [false, true] {
                let cfg = StreamingConfig {
                    voxel_size: scene.voxel_size,
                    use_vq,
                    vq: VqConfig::tiny(),
                    threads: 1,
                    ..Default::default()
                };
                let s = StreamingScene::new(scene.trained.clone(), cfg);
                for cam in &scene.eval_cameras[..2.min(scene.eval_cameras.len())] {
                    outputs_identical(&s.render(cam), &s.render_cloud_twin(cam));
                }
            }
        }
    }

    #[test]
    fn cached_strided_store_path_matches_cloud_twin() {
        // Cached + strided configuration: the trace-replayed cache
        // accounting and the dilated masks must agree across fetch paths.
        // Two separate scenes so each path advances its own persistent
        // cache.
        let scene = SceneKind::Playroom.build(&SceneConfig::tiny());
        let cfg = StreamingConfig {
            voxel_size: scene.voxel_size,
            ray_stride: 3,
            threads: 1,
            cache: Some(CacheConfig::default()),
            ..Default::default()
        };
        let a = StreamingScene::new(scene.trained.clone(), cfg);
        let b = StreamingScene::new(scene.trained.clone(), cfg);
        for cam in &scene.eval_cameras[..2.min(scene.eval_cameras.len())] {
            outputs_identical(&a.render(cam), &b.render_cloud_twin(cam));
        }
    }

    #[test]
    fn intra_group_ray_parallelism_is_bit_identical() {
        // Group sizes that leave fewer groups than workers flip the
        // renderer into ray-parallel mode; output must not change for any
        // thread count (the ROADMAP determinism contract).
        let scene = SceneKind::Truck.build(&SceneConfig::tiny());
        let cam = &scene.eval_cameras[0];
        for group_size in [128, 256] {
            let base = StreamingConfig {
                voxel_size: scene.voxel_size,
                group_size,
                ..Default::default()
            };
            let serial = StreamingScene::new(
                scene.trained.clone(),
                StreamingConfig { threads: 1, ..base },
            )
            .render(cam);
            for threads in [2, 6, 0] {
                let par =
                    StreamingScene::new(scene.trained.clone(), StreamingConfig { threads, ..base })
                        .render(cam);
                outputs_identical(&serial, &par);
            }
        }
    }

    #[test]
    fn render_into_reuses_buffers_and_matches_render() {
        let scene = SceneKind::Lego.build(&SceneConfig::tiny());
        let s = StreamingScene::new(
            scene.trained.clone(),
            StreamingConfig {
                voxel_size: scene.voxel_size,
                threads: 2,
                ..Default::default()
            },
        );
        let mut out = StreamingOutput::default();
        for cam in &scene.eval_cameras {
            s.render_into(cam, &mut out);
            let fresh = s.render(cam);
            outputs_identical(&out, &fresh);
        }
    }
}
