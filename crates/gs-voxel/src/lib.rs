//! # gs-voxel — the fully-streaming, memory-centric 3DGS pipeline
//!
//! This crate is the reproduction of the StreamingGS **core contribution**
//! (paper Sec. III): rendering a frame *voxel-by-voxel* instead of
//! tile-stage-by-tile-stage, so that all intermediate data fits on-chip and
//! the only DRAM traffic is (a) streaming each voxel's Gaussians in once and
//! (b) writing final pixels out once.
//!
//! Pipeline per pixel group (tile):
//!
//! 1. **Ray–voxel intersection** ([`dda`]): every pixel ray marches the
//!    [`grid::VoxelGrid`] front-to-back, producing its ordered voxel list.
//! 2. **Voxel ordering** ([`order`]): per-ray lists become a DAG whose
//!    topological order (Kahn) is the tile's global voxel rendering order.
//! 3. **Hierarchical filtering** ([`filter`]): per voxel, the coarse filter
//!    reads only `(x, y, z, s_max)` (16 B) and culls against the tile; only
//!    survivors fetch the VQ-compressed second half and run the precise
//!    (fine) projection.
//! 4. **In-voxel sorting + blending** ([`streaming`]): survivors sort by
//!    depth within the voxel and blend into on-chip partial pixel values
//!    that persist across voxels; pixels saturate early and the tile stops
//!    streaming further voxels once fully opaque.
//!
//! ## The data path is byte-exact (PR 3)
//!
//! At scene preparation the cloud is materialized into a
//! **voxel-resident columnar store** ([`store::VoxelStore`]): a raw
//! first-half column (16 B `[x, y, z, s_max]` per Gaussian, the coarse
//! filter's only input) and a second-half column holding either the raw
//! 220 B parameter remainder or VQ index records decoded through the
//! codebooks on fetch — both voxel-contiguous, the paper's Fig. 8 DRAM
//! layout realized as actual bytes. The render phases read **only** from
//! the store, and every fetch plus the final pixel writeback is metered
//! through per-worker [`gs_mem::TrafficLedger`]s merged once per frame in
//! deterministic worker order. The per-tile byte counters
//! ([`workload::TileWorkload`]) are *derived from* the ledger, making it
//! the single source of byte truth end to end; `gs-accel` prices DRAM
//! time and energy from the same measured ledger. Store decodes are
//! bit-exact, and [`streaming::StreamingScene::render_cloud_twin`] keeps
//! the old cloud-backed fetch path alive as a reference twin —
//! `tests/store_ledger.rs` asserts byte-identical images, workloads and
//! ledgers on every scene kind, raw and VQ.
//!
//! ## Paging and the working-set cache (PR 4)
//!
//! The store's columns live behind a backing abstraction: fully resident,
//! or **demand-paged** at slot-range granularity from a compact
//! serialized scene image (in memory or on disk, with an optional
//! LRU-evicted page budget) for scenes larger than host memory —
//! bit-exact either way (`tests/paged_cache.rs`). Orthogonally,
//! [`streaming::StreamingConfig::cache`] fronts the coarse/fine fetch
//! stages with a deterministic [`gs_mem::cache::WorkingSetCache`] model:
//! fetches are traced per group and replayed in global group order at
//! frame end (hit/miss counts are thread-count invariant), hits are
//! metered as on-chip bytes and only burst-rounded miss fills reach the
//! ledger's DRAM transaction counters — the bytes `gs-accel` prices.
//!
//! ## Fault tolerance and the error-handling contract (PR 6)
//!
//! The paged backing is fallible by design: scene images carry a
//! versioned header with per-chunk CRC32 checksums (verified on page
//! materialization), page reads retry transient faults with capped
//! deterministic backoff, and permanent faults mark pages dead. The
//! contract:
//!
//! * **Returns `Err(`[`store::StoreError`]`)`** — everything that depends
//!   on external bytes: `open_paged_*` (malformed/truncated/corrupt
//!   images), `try_fetch_coarse`/`try_fetch_fine`/`try_coarse_of` on a
//!   paged store (I/O errors, exhausted retries, dead pages), and
//!   [`streaming::StreamingScene::try_render`]/`try_render_into`, which
//!   propagate the globally-first failing group's error for any worker
//!   count.
//! * **Panics** — only the infallible convenience wrappers
//!   (`fetch_coarse`, `fetch_fine`, `render`, `render_into`, `paged_twin`,
//!   `page_out`) and only on a `StoreError` that the fallible twin would
//!   have returned; on resident stores these can never fire. Logic bugs
//!   (out-of-range slot/voxel ids) stay panics everywhere — they are
//!   caller errors, not data faults.
//! * **Degrades** — with [`streaming::StreamingConfig::degrade_on_fault`]
//!   (default), mid-frame page faults that survive retry don't fail the
//!   frame: the affected voxel is skipped (coarse column unavailable) or
//!   the fine record blends as its grey coarse-approximation stand-in;
//!   every event is counted in the thread-invariant
//!   [`streaming::DegradationReport`] returned with the frame.
//!
//! Deterministic fault injection ([`store::FaultPolicy`], seeded and
//! keyed on read offset + attempt only) drives the recovery suites
//! (`tests/fault_injection.rs`, `tests/fuzz_scene_image.rs`) and the
//! `robust` bench.
//!
//! The functional renderer also measures everything the accelerator model
//! needs ([`workload`]) and the depth-order violations that the
//! boundary-aware fine-tuning (crate `gs-tune`) penalizes.
//!
//! ## Example
//!
//! ```
//! use gs_scene::{SceneConfig, SceneKind};
//! use gs_voxel::{StreamingConfig, StreamingScene};
//!
//! let scene = SceneKind::Lego.build(&SceneConfig::tiny());
//! let cfg = StreamingConfig { voxel_size: scene.voxel_size, ..StreamingConfig::default() };
//! let streaming = StreamingScene::new(scene.trained.clone(), cfg);
//! let out = streaming.render(&scene.eval_cameras[0]);
//! assert!(out.workload.totals().gaussians_streamed > 0);
//! ```

pub mod dda;
pub mod filter;
pub mod grid;
pub mod order;
pub mod store;
pub mod streaming;
pub mod workload;

pub use grid::VoxelGrid;
pub use store::{
    CoarseIter, ColumnKind, FaultPolicy, FaultStats, PageConfig, StoreError, StoreFaultSnapshot,
    VoxelStore,
};
pub use streaming::{
    DegradationReport, QualityPolicy, StreamingConfig, StreamingOutput, StreamingScene,
    TierUsageReport, MAX_EXTRA_TIERS,
};
pub use workload::{FrameWorkload, TileWorkload};

// The tier layout type lives in `gs-vq` (the codec layer); re-exported
// here because `StreamingConfig::tiers` is the usual way to name one.
pub use gs_vq::TierSpec;
