//! Ray–voxel traversal (Amanatides–Woo DDA).
//!
//! The VSU samples along each pixel ray to identify intersected voxels
//! (paper Sec. IV-B). We implement exact grid traversal rather than point
//! sampling: it visits precisely the cells the ray passes through, in
//! front-to-back order, which is what the renaming/ordering hardware needs.

use crate::grid::VoxelGrid;
use gs_core::geom::Ray;

/// Result of traversing one ray.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RayVoxels {
    /// Renamed ids of the non-empty voxels hit, front-to-back.
    pub voxels: Vec<u32>,
    /// Total DDA steps taken (includes empty cells) — the VSU work measure.
    pub steps: u32,
}

/// Walks `ray` through `grid`, collecting non-empty voxels front-to-back.
///
/// `max_steps` bounds the walk (a ray crossing an `n³` grid takes at most
/// ~`3n` steps; the bound guards degenerate rays).
pub fn traverse(grid: &VoxelGrid, ray: &Ray, max_steps: u32) -> RayVoxels {
    let mut out = RayVoxels::default();
    out.steps = traverse_into(grid, ray, max_steps, &mut out.voxels);
    out
}

/// [`traverse`] into a caller-owned voxel list (cleared first), returning
/// the DDA step count. The streaming renderer's per-group scratch reuses
/// one list per ray slot across frames, keeping the steady-state ray loop
/// allocation-free.
pub fn traverse_into(grid: &VoxelGrid, ray: &Ray, max_steps: u32, voxels: &mut Vec<u32>) -> u32 {
    voxels.clear();
    let mut steps = 0u32;
    let bounds = grid.bounds();
    let Some((t_enter, t_exit)) = bounds.intersect_ray(ray) else {
        return steps;
    };
    let t_start = t_enter.max(0.0);
    if t_exit < t_start {
        return steps;
    }

    // Nudge inside the boundary to get a well-defined starting cell.
    let eps = 1e-5 * grid.voxel_size().max(1.0);
    let p = ray.at(t_start + eps);
    let (mut cx, mut cy, mut cz) = grid.cell_of(p);
    let (dx, dy, dz) = grid.dims();
    let clamp = |v: i32, hi: u32| v.clamp(0, hi as i32 - 1);
    cx = clamp(cx, dx);
    cy = clamp(cy, dy);
    cz = clamp(cz, dz);

    let vs = grid.voxel_size();
    let origin = grid.origin();

    // Per-axis step direction, t to next boundary, and t per cell.
    let mut step = [0i32; 3];
    let mut t_max = [f32::INFINITY; 3];
    let mut t_delta = [f32::INFINITY; 3];
    let cell = [cx, cy, cz];
    let dir = [ray.dir.x, ray.dir.y, ray.dir.z];
    let org = [ray.origin.x, ray.origin.y, ray.origin.z];
    let grid_org = [origin.x, origin.y, origin.z];
    for a in 0..3 {
        if dir[a] > 1e-12 {
            step[a] = 1;
            let boundary = grid_org[a] + (cell[a] + 1) as f32 * vs;
            t_max[a] = (boundary - org[a]) / dir[a];
            t_delta[a] = vs / dir[a];
        } else if dir[a] < -1e-12 {
            step[a] = -1;
            let boundary = grid_org[a] + cell[a] as f32 * vs;
            t_max[a] = (boundary - org[a]) / dir[a];
            t_delta[a] = vs / -dir[a];
        }
    }

    let (mut cx, mut cy, mut cz) = (cell[0], cell[1], cell[2]);
    for _ in 0..max_steps {
        steps += 1;
        if let Some(v) = grid.voxel_at((cx, cy, cz)) {
            // A ray re-entering the same voxel id cannot happen in a convex
            // cell walk, so no dedup needed.
            voxels.push(v);
        }
        // Advance along the axis with the nearest boundary.
        let axis = if t_max[0] <= t_max[1] && t_max[0] <= t_max[2] {
            0
        } else if t_max[1] <= t_max[2] {
            1
        } else {
            2
        };
        if t_max[axis] > t_exit {
            break;
        }
        t_max[axis] += t_delta[axis];
        match axis {
            0 => cx += step[0],
            1 => cy += step[1],
            _ => cz += step[2],
        }
        if cx < 0 || cy < 0 || cz < 0 || cx >= dx as i32 || cy >= dy as i32 || cz >= dz as i32 {
            break;
        }
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_core::vec::Vec3;
    use gs_scene::{Gaussian, GaussianCloud};

    /// A 4×1×1 row of occupied voxels at y=z=0.5.
    fn row_grid() -> (GaussianCloud, VoxelGrid) {
        let mut c = GaussianCloud::new();
        for x in 0..4 {
            c.push(Gaussian::isotropic(
                Vec3::new(x as f32 + 0.5, 0.5, 0.5),
                0.05,
                Vec3::ONE,
                0.9,
            ));
        }
        let g = VoxelGrid::build(&c, 1.0);
        (c, g)
    }

    #[test]
    fn axis_ray_visits_all_cells_in_order() {
        let (_, grid) = row_grid();
        let ray = Ray::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::X);
        let r = traverse(&grid, &ray, 100);
        assert_eq!(r.voxels.len(), 4);
        // Front-to-back: voxel centres must be monotonically farther.
        let mut last = f32::NEG_INFINITY;
        for &v in &r.voxels {
            let d = (grid.voxel_center(v) - ray.origin).dot(ray.dir);
            assert!(d > last);
            last = d;
        }
    }

    #[test]
    fn reverse_ray_visits_reverse_order() {
        let (_, grid) = row_grid();
        let fwd = traverse(&grid, &Ray::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::X), 100);
        let bwd = traverse(&grid, &Ray::new(Vec3::new(5.0, 0.5, 0.5), -Vec3::X), 100);
        let mut rev = bwd.voxels.clone();
        rev.reverse();
        assert_eq!(fwd.voxels, rev);
    }

    #[test]
    fn missing_ray_returns_empty() {
        let (_, grid) = row_grid();
        let r = traverse(&grid, &Ray::new(Vec3::new(0.0, 10.0, 0.0), Vec3::X), 100);
        assert!(r.voxels.is_empty());
        assert_eq!(r.steps, 0);
    }

    #[test]
    fn ray_starting_inside_works() {
        let (_, grid) = row_grid();
        let r = traverse(&grid, &Ray::new(Vec3::new(1.5, 0.5, 0.5), Vec3::X), 100);
        assert_eq!(
            r.voxels.len(),
            3,
            "voxels 1..=3 visible from inside voxel 1"
        );
    }

    #[test]
    fn diagonal_ray_monotone_depth() {
        // A 3×3×3 block of occupied voxels.
        let mut c = GaussianCloud::new();
        for x in 0..3 {
            for y in 0..3 {
                for z in 0..3 {
                    c.push(Gaussian::isotropic(
                        Vec3::new(x as f32 + 0.5, y as f32 + 0.5, z as f32 + 0.5),
                        0.05,
                        Vec3::ONE,
                        0.9,
                    ));
                }
            }
        }
        let grid = VoxelGrid::build(&c, 1.0);
        let dir = Vec3::new(1.0, 0.7, 0.4).normalized();
        let ray = Ray::new(Vec3::new(-0.5, -0.2, 0.1), dir);
        let r = traverse(&grid, &ray, 1000);
        assert!(!r.voxels.is_empty());
        let mut last = f32::NEG_INFINITY;
        for &v in &r.voxels {
            let d = (grid.voxel_center(v) - ray.origin).dot(ray.dir);
            assert!(
                d > last - 0.87,
                "non-monotone visit (allowing half-diagonal slack)"
            );
            last = last.max(d);
        }
        // No voxel repeated.
        let mut sorted = r.voxels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), r.voxels.len());
    }

    #[test]
    fn traversal_matches_brute_force_sampling() {
        // Property-style check: dense point sampling along the ray must find
        // a subset of the cells DDA reports.
        let (_, grid) = row_grid();
        let dir = Vec3::new(1.0, 0.12, -0.07).normalized();
        let ray = Ray::new(Vec3::new(-0.8, 0.4, 0.62), dir);
        let dda = traverse(&grid, &ray, 1000);
        let mut sampled = Vec::new();
        let mut t = 0.0f32;
        while t < 8.0 {
            let p = ray.at(t);
            if let Some(v) = grid.voxel_at(grid.cell_of(p)) {
                if sampled.last() != Some(&v) {
                    sampled.push(v);
                }
            }
            t += 0.01;
        }
        for v in &sampled {
            assert!(dda.voxels.contains(v), "DDA missed voxel {v}");
        }
    }

    #[test]
    fn max_steps_bounds_work() {
        let (_, grid) = row_grid();
        let ray = Ray::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::X);
        let r = traverse(&grid, &ray, 2);
        assert!(r.steps <= 2);
        assert!(r.voxels.len() <= 2);
    }
}
