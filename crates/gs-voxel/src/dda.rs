//! Ray–voxel traversal (Amanatides–Woo DDA).
//!
//! The VSU samples along each pixel ray to identify intersected voxels
//! (paper Sec. IV-B). We implement exact grid traversal rather than point
//! sampling: it visits precisely the cells the ray passes through, in
//! front-to-back order, which is what the renaming/ordering hardware needs.

use crate::grid::VoxelGrid;
use gs_core::geom::Ray;

/// Result of traversing one ray.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RayVoxels {
    /// Renamed ids of the non-empty voxels hit, front-to-back.
    pub voxels: Vec<u32>,
    /// Total DDA steps taken (includes empty cells) — the VSU work measure.
    pub steps: u32,
}

/// Walks `ray` through `grid`, collecting non-empty voxels front-to-back.
///
/// `max_steps` bounds the walk (a ray crossing an `n³` grid takes at most
/// ~`3n` steps; the bound guards degenerate rays).
pub fn traverse(grid: &VoxelGrid, ray: &Ray, max_steps: u32) -> RayVoxels {
    let mut out = RayVoxels::default();
    out.steps = traverse_into(grid, ray, max_steps, &mut out.voxels);
    out
}

/// [`traverse`] into a caller-owned voxel list (cleared first), returning
/// the DDA step count. The streaming renderer's per-group scratch reuses
/// flat per-chunk buffers across frames, keeping the steady-state ray loop
/// allocation-free.
pub fn traverse_into(grid: &VoxelGrid, ray: &Ray, max_steps: u32, voxels: &mut Vec<u32>) -> u32 {
    voxels.clear();
    traverse_append(grid, ray, max_steps, voxels)
}

/// [`traverse_into`] without the clear: the ray's voxels are **appended**
/// to `voxels`, so many rays can share one flat buffer (the caller records
/// the per-ray end offsets). This is the streaming renderer's ray-grid
/// building block — each DDA worker chunk appends its rays back to back.
pub fn traverse_append(grid: &VoxelGrid, ray: &Ray, max_steps: u32, voxels: &mut Vec<u32>) -> u32 {
    let mut steps = 0u32;
    let bounds = grid.bounds();
    let Some((t_enter, t_exit)) = bounds.intersect_ray(ray) else {
        return steps;
    };
    let t_start = t_enter.max(0.0);
    if t_exit < t_start {
        return steps;
    }

    let (dx, dy, dz) = grid.dims();
    let vs = grid.voxel_size();
    let origin = grid.origin();
    let dir = [ray.dir.x, ray.dir.y, ray.dir.z];
    let org = [ray.origin.x, ray.origin.y, ray.origin.z];
    let grid_org = [origin.x, origin.y, origin.z];
    let dims = [dx as i32, dy as i32, dz as i32];

    // Entry cell, derived per-axis from the **un-nudged** entry point. Each
    // axis is nudged by eps only along its own travel direction, so landing
    // exactly on a cell boundary resolves to the cell the ray moves into,
    // while a grazing (near-parallel) axis is never pushed across a face it
    // does not cross. The seed instead nudged the whole point eps along the
    // ray and clamped the result into the grid — a grazing ray whose nudge
    // landed outside got clamped into a row of cells it never enters.
    let eps = 1e-5 * vs.max(1.0);
    let p = ray.at(t_start);
    let entry = [p.x, p.y, p.z];
    let mut cell = [0i32; 3];
    for a in 0..3 {
        let nudge = if dir[a] > 1e-12 {
            eps
        } else if dir[a] < -1e-12 {
            -eps
        } else {
            0.0
        };
        let mut c = ((entry[a] + nudge - grid_org[a]) / vs).floor() as i32;
        let hi = dims[a] - 1;
        if c < 0 {
            // At (or within float fuzz of) the min face: the ray enters
            // cell 0 only when moving inward or running along the face.
            if dir[a] >= -1e-12 && entry[a] >= grid_org[a] - eps {
                c = 0;
            } else {
                return steps;
            }
        } else if c > hi {
            // Mirror case at the max face (which belongs to the last cell).
            let face = grid_org[a] + dims[a] as f32 * vs;
            if dir[a] <= 1e-12 && entry[a] <= face + eps {
                c = hi;
            } else {
                return steps;
            }
        }
        cell[a] = c;
    }

    // Per-axis step direction, t to next boundary, and t per cell.
    let mut step = [0i32; 3];
    let mut t_max = [f32::INFINITY; 3];
    let mut t_delta = [f32::INFINITY; 3];
    for a in 0..3 {
        if dir[a] > 1e-12 {
            step[a] = 1;
            let boundary = grid_org[a] + (cell[a] + 1) as f32 * vs;
            t_max[a] = (boundary - org[a]) / dir[a];
            t_delta[a] = vs / dir[a];
        } else if dir[a] < -1e-12 {
            step[a] = -1;
            let boundary = grid_org[a] + cell[a] as f32 * vs;
            t_max[a] = (boundary - org[a]) / dir[a];
            t_delta[a] = vs / -dir[a];
        }
    }

    let (mut cx, mut cy, mut cz) = (cell[0], cell[1], cell[2]);
    for _ in 0..max_steps {
        steps += 1;
        if let Some(v) = grid.voxel_at((cx, cy, cz)) {
            // A ray re-entering the same voxel id cannot happen in a convex
            // cell walk, so no dedup needed.
            voxels.push(v);
        }
        // Advance along the axis with the nearest boundary.
        let axis = if t_max[0] <= t_max[1] && t_max[0] <= t_max[2] {
            0
        } else if t_max[1] <= t_max[2] {
            1
        } else {
            2
        };
        if t_max[axis] > t_exit {
            break;
        }
        t_max[axis] += t_delta[axis];
        match axis {
            0 => cx += step[0],
            1 => cy += step[1],
            _ => cz += step[2],
        }
        if cx < 0 || cy < 0 || cz < 0 || cx >= dx as i32 || cy >= dy as i32 || cz >= dz as i32 {
            break;
        }
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_core::vec::Vec3;
    use gs_scene::{Gaussian, GaussianCloud};

    /// A 4×1×1 row of occupied voxels at y=z=0.5.
    fn row_grid() -> (GaussianCloud, VoxelGrid) {
        let mut c = GaussianCloud::new();
        for x in 0..4 {
            c.push(Gaussian::isotropic(
                Vec3::new(x as f32 + 0.5, 0.5, 0.5),
                0.05,
                Vec3::ONE,
                0.9,
            ));
        }
        let g = VoxelGrid::build(&c, 1.0);
        (c, g)
    }

    #[test]
    fn axis_ray_visits_all_cells_in_order() {
        let (_, grid) = row_grid();
        let ray = Ray::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::X);
        let r = traverse(&grid, &ray, 100);
        assert_eq!(r.voxels.len(), 4);
        // Front-to-back: voxel centres must be monotonically farther.
        let mut last = f32::NEG_INFINITY;
        for &v in &r.voxels {
            let d = (grid.voxel_center(v) - ray.origin).dot(ray.dir);
            assert!(d > last);
            last = d;
        }
    }

    #[test]
    fn reverse_ray_visits_reverse_order() {
        let (_, grid) = row_grid();
        let fwd = traverse(&grid, &Ray::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::X), 100);
        let bwd = traverse(&grid, &Ray::new(Vec3::new(5.0, 0.5, 0.5), -Vec3::X), 100);
        let mut rev = bwd.voxels.clone();
        rev.reverse();
        assert_eq!(fwd.voxels, rev);
    }

    #[test]
    fn missing_ray_returns_empty() {
        let (_, grid) = row_grid();
        let r = traverse(&grid, &Ray::new(Vec3::new(0.0, 10.0, 0.0), Vec3::X), 100);
        assert!(r.voxels.is_empty());
        assert_eq!(r.steps, 0);
    }

    #[test]
    fn ray_starting_inside_works() {
        let (_, grid) = row_grid();
        let r = traverse(&grid, &Ray::new(Vec3::new(1.5, 0.5, 0.5), Vec3::X), 100);
        assert_eq!(
            r.voxels.len(),
            3,
            "voxels 1..=3 visible from inside voxel 1"
        );
    }

    #[test]
    fn diagonal_ray_monotone_depth() {
        // A 3×3×3 block of occupied voxels.
        let mut c = GaussianCloud::new();
        for x in 0..3 {
            for y in 0..3 {
                for z in 0..3 {
                    c.push(Gaussian::isotropic(
                        Vec3::new(x as f32 + 0.5, y as f32 + 0.5, z as f32 + 0.5),
                        0.05,
                        Vec3::ONE,
                        0.9,
                    ));
                }
            }
        }
        let grid = VoxelGrid::build(&c, 1.0);
        let dir = Vec3::new(1.0, 0.7, 0.4).normalized();
        let ray = Ray::new(Vec3::new(-0.5, -0.2, 0.1), dir);
        let r = traverse(&grid, &ray, 1000);
        assert!(!r.voxels.is_empty());
        let mut last = f32::NEG_INFINITY;
        for &v in &r.voxels {
            let d = (grid.voxel_center(v) - ray.origin).dot(ray.dir);
            assert!(
                d > last - 0.87,
                "non-monotone visit (allowing half-diagonal slack)"
            );
            last = last.max(d);
        }
        // No voxel repeated.
        let mut sorted = r.voxels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), r.voxels.len());
    }

    #[test]
    fn traversal_matches_brute_force_sampling() {
        // Property-style check: dense point sampling along the ray must find
        // a subset of the cells DDA reports.
        let (_, grid) = row_grid();
        let dir = Vec3::new(1.0, 0.12, -0.07).normalized();
        let ray = Ray::new(Vec3::new(-0.8, 0.4, 0.62), dir);
        let dda = traverse(&grid, &ray, 1000);
        let mut sampled = Vec::new();
        let mut t = 0.0f32;
        while t < 8.0 {
            let p = ray.at(t);
            if let Some(v) = grid.voxel_at(grid.cell_of(p)) {
                if sampled.last() != Some(&v) {
                    sampled.push(v);
                }
            }
            t += 0.01;
        }
        for v in &sampled {
            assert!(dda.voxels.contains(v), "DDA missed voxel {v}");
        }
    }

    #[test]
    fn corner_grazing_exit_ray_reports_nothing() {
        // The ray reaches the grid's entry corner (x_min, y_max) exactly
        // while moving *out* of the y-range: the box test reports a
        // single-point contact (t_enter == t_exit), and the seed's clamp
        // then pulled the nudged point back into the top row — reporting a
        // voxel whose interior the ray never enters. The per-axis entry
        // rule returns an empty visit list instead.
        let (_, grid) = row_grid();
        let b = grid.bounds();
        let z = 0.5 * (b.min.z + b.max.z);
        // y(t) = (y_max − 0.1) + 0.1·t reaches y_max exactly when x
        // reaches x_min (both at t = 1), then keeps climbing.
        let ray = Ray::new(
            Vec3::new(b.min.x - 1.0, b.max.y - 0.1, z),
            Vec3::new(1.0, 0.1, 0.0),
        );
        let r = traverse(&grid, &ray, 100);
        assert!(
            r.voxels.is_empty(),
            "corner-touching exiting ray must enter no cell, got {:?}",
            r.voxels
        );
    }

    #[test]
    fn ray_along_max_face_visits_boundary_cells() {
        // Axis-aligned ray exactly on the top face (y = y_max): the closed
        // box reports a hit and the face belongs to the adjacent inner
        // cells — the grazing rule must keep (not clamp-invent) this row.
        let (_, grid) = row_grid();
        let b = grid.bounds();
        let z = 0.5 * (b.min.z + b.max.z);
        let top = traverse(
            &grid,
            &Ray::new(Vec3::new(b.min.x - 1.0, b.max.y, z), Vec3::X),
            100,
        );
        assert_eq!(top.voxels.len(), 4, "top-face ray grazes all four cells");
        // And the min face (y = y_min) belongs to cell row 0 just the same.
        let bottom = traverse(
            &grid,
            &Ray::new(Vec3::new(b.min.x - 1.0, b.min.y, z), Vec3::X),
            100,
        );
        assert_eq!(bottom.voxels.len(), 4);
    }

    #[test]
    fn grazing_ray_drifting_inward_still_traverses() {
        // Entering exactly at the corner but moving *into* the grid: a
        // legitimate traversal that the per-axis rule must keep.
        let (_, grid) = row_grid();
        let b = grid.bounds();
        let z = 0.5 * (b.min.z + b.max.z);
        // y(t) = (y_max + 0.05) − 0.05·t hits y_max exactly when x reaches
        // x_min (t = 1), then keeps dropping into the row.
        let ray = Ray::new(
            Vec3::new(b.min.x - 1.0, b.max.y + 0.05, z),
            Vec3::new(1.0, -0.05, 0.0),
        );
        let r = traverse(&grid, &ray, 100);
        assert!(
            !r.voxels.is_empty(),
            "inward-drifting corner entry must traverse"
        );
        // Every reported voxel must genuinely be intersected by the ray.
        for &v in &r.voxels {
            assert!(
                grid.voxel_aabb(v).intersect_ray(&ray).is_some(),
                "reported voxel {v} not on the ray"
            );
        }
    }

    #[test]
    fn max_steps_bounds_work() {
        let (_, grid) = row_grid();
        let ray = Ray::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::X);
        let r = traverse(&grid, &ray, 2);
        assert!(r.steps <= 2);
        assert!(r.voxels.len() <= 2);
    }
}
