//! Ray–voxel traversal (Amanatides–Woo DDA).
//!
//! The VSU samples along each pixel ray to identify intersected voxels
//! (paper Sec. IV-B). We implement exact grid traversal rather than point
//! sampling: it visits precisely the cells the ray passes through, in
//! front-to-back order, which is what the renaming/ordering hardware needs.
//!
//! The public trio ([`traverse`] / [`traverse_into`] / [`traverse_append`])
//! shares one core marcher ([`march`]) whose step loop carries an
//! **incremental linear cell index** (one stride add per step instead of
//! recomputing `(z*ny + y)*nx + x`) and replaces the post-step six-compare
//! bounds test with per-axis remaining-step counters, leaving one
//! remaining-cells check on the stepped axis as the only per-step branch
//! beyond the axis cascade. Every transformation is
//! step-for-step identical to the original loop — [`reference`] keeps that
//! loop verbatim, and the `payload` bench plus the property suite pin the
//! two against each other (same voxel lists, same step counts, on random
//! grids and rays).

use crate::grid::{Cell, VoxelGrid, EMPTY_CELL};
use gs_core::geom::Ray;

/// Result of traversing one ray.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RayVoxels {
    /// Renamed ids of the non-empty voxels hit, front-to-back.
    pub voxels: Vec<u32>,
    /// Total DDA steps taken (includes empty cells) — the VSU work measure.
    pub steps: u32,
}

/// Walks `ray` through `grid`, collecting non-empty voxels front-to-back.
///
/// `max_steps` bounds the walk (a ray crossing an `n³` grid takes at most
/// ~`3n` steps; the bound guards degenerate rays).
pub fn traverse(grid: &VoxelGrid, ray: &Ray, max_steps: u32) -> RayVoxels {
    let mut out = RayVoxels::default();
    out.steps = traverse_into(grid, ray, max_steps, &mut out.voxels);
    out
}

/// [`traverse`] into a caller-owned voxel list (cleared first), returning
/// the DDA step count. The streaming renderer's per-group scratch reuses
/// flat per-chunk buffers across frames, keeping the steady-state ray loop
/// allocation-free.
pub fn traverse_into(grid: &VoxelGrid, ray: &Ray, max_steps: u32, voxels: &mut Vec<u32>) -> u32 {
    voxels.clear();
    traverse_append(grid, ray, max_steps, voxels)
}

/// [`traverse_into`] without the clear: the ray's voxels are **appended**
/// to `voxels`, so many rays can share one flat buffer (the caller records
/// the per-ray end offsets). This is the streaming renderer's ray-grid
/// building block — each DDA worker chunk appends its rays back to back.
pub fn traverse_append(grid: &VoxelGrid, ray: &Ray, max_steps: u32, voxels: &mut Vec<u32>) -> u32 {
    let table = grid.cell_table();
    march(grid, ray, max_steps, |_, lin| {
        let v = table[lin];
        if v != EMPTY_CELL {
            // A ray re-entering the same voxel id cannot happen in a convex
            // cell walk, so no dedup needed.
            voxels.push(v);
        }
    })
}

/// Instrumented marcher for the exactness suite: records every visited
/// cell (occupied or empty) together with the incremental linear index the
/// step loop carried at that step. The property tests recompute
/// `(z*ny + y)*nx + x` from the recorded cell and assert equality.
#[doc(hidden)]
pub fn traverse_cells(
    grid: &VoxelGrid,
    ray: &Ray,
    max_steps: u32,
    out: &mut Vec<(Cell, usize)>,
) -> u32 {
    out.clear();
    march(grid, ray, max_steps, |cell, lin| out.push((cell, lin)))
}

/// The core marcher every traversal entry point funnels into. Calls
/// `visit(cell, lin)` once per DDA step — `lin` is the linear cell-table
/// index, maintained incrementally — and returns the step count.
///
/// Bit-exactness notes (this loop must reproduce [`reference`] exactly):
///
/// - The `t_max`/`t_delta` setup keeps the **division** by `dir[a]`.
///   Multiplying by a precomputed `1.0 / dir[a]` is not the same rounding
///   (`vs * (1/d)` and `vs / d` can differ in the last ulp), and a one-ulp
///   flip at a `t_max` tie changes which intermediate cell the walk visits
///   — a different voxel list, hence different image bytes downstream.
/// - The axis-select cascade is the original's, verbatim (same `<=`
///   tie-toward-lower-axis rule); each arm updates its own scalar state,
///   which keeps the whole step loop in registers (a dynamically indexed
///   `t_max[axis]` forces the arrays onto the stack and costs more than
///   the cascade's branches, which predict well on coherent camera rays).
/// - The per-axis `rem` counters replace the original's post-step
///   six-compare bounds test: the entry cell is in bounds and each step
///   moves exactly one axis by ±1, so the walk leaves the grid precisely
///   when the stepped axis has no remaining cells. Breaking *before* the
///   final `t_max`/cell update (instead of after, as the original does) is
///   unobservable — both loops have already counted the step and visited
///   the cell, and the discarded updates touch only locals. An axis with
///   `step == 0` keeps `rem == u32::MAX`; it is never selected before the
///   `t_exit` break because its `t_max` stays infinite.
#[inline(always)]
fn march<F: FnMut(Cell, usize)>(grid: &VoxelGrid, ray: &Ray, max_steps: u32, mut visit: F) -> u32 {
    let mut steps = 0u32;
    let bounds = grid.bounds();
    let Some((t_enter, t_exit)) = bounds.intersect_ray(ray) else {
        return steps;
    };
    let t_start = t_enter.max(0.0);
    if t_exit < t_start {
        return steps;
    }

    let (dx, dy, dz) = grid.dims();
    let vs = grid.voxel_size();
    let origin = grid.origin();
    let dir = [ray.dir.x, ray.dir.y, ray.dir.z];
    let org = [ray.origin.x, ray.origin.y, ray.origin.z];
    let grid_org = [origin.x, origin.y, origin.z];
    let dims = [dx as i32, dy as i32, dz as i32];

    // Entry cell, derived per-axis from the **un-nudged** entry point. Each
    // axis is nudged by eps only along its own travel direction, so landing
    // exactly on a cell boundary resolves to the cell the ray moves into,
    // while a grazing (near-parallel) axis is never pushed across a face it
    // does not cross. The seed instead nudged the whole point eps along the
    // ray and clamped the result into the grid — a grazing ray whose nudge
    // landed outside got clamped into a row of cells it never enters.
    //
    // The per-axis step direction, t to next boundary, t per cell, and
    // remaining-cell counter are derived in the same pass (the setup only
    // reads this axis's entry cell).
    let eps = 1e-5 * vs.max(1.0);
    let p = ray.at(t_start);
    let entry = [p.x, p.y, p.z];
    let mut cell = [0i32; 3];
    let mut step = [0i32; 3];
    let mut t_max = [f32::INFINITY; 3];
    let mut t_delta = [f32::INFINITY; 3];
    let mut rem = [u32::MAX; 3];
    for a in 0..3 {
        let nudge = if dir[a] > 1e-12 {
            eps
        } else if dir[a] < -1e-12 {
            -eps
        } else {
            0.0
        };
        let mut c = ((entry[a] + nudge - grid_org[a]) / vs).floor() as i32;
        let hi = dims[a] - 1;
        if c < 0 {
            // At (or within float fuzz of) the min face: the ray enters
            // cell 0 only when moving inward or running along the face.
            if dir[a] >= -1e-12 && entry[a] >= grid_org[a] - eps {
                c = 0;
            } else {
                return steps;
            }
        } else if c > hi {
            // Mirror case at the max face (which belongs to the last cell).
            let face = grid_org[a] + dims[a] as f32 * vs;
            if dir[a] <= 1e-12 && entry[a] <= face + eps {
                c = hi;
            } else {
                return steps;
            }
        }
        cell[a] = c;
        if dir[a] > 1e-12 {
            step[a] = 1;
            let boundary = grid_org[a] + (c + 1) as f32 * vs;
            t_max[a] = (boundary - org[a]) / dir[a];
            t_delta[a] = vs / dir[a];
            rem[a] = (hi - c) as u32;
        } else if dir[a] < -1e-12 {
            step[a] = -1;
            let boundary = grid_org[a] + c as f32 * vs;
            t_max[a] = (boundary - org[a]) / dir[a];
            t_delta[a] = vs / -dir[a];
            rem[a] = c as u32;
        }
    }

    // Incremental linear index: strides [1, nx, nx·ny], one add per step.
    let mut lin =
        (cell[2] as i64 * dims[1] as i64 + cell[1] as i64) * dims[0] as i64 + cell[0] as i64;
    let dlx = step[0] as i64;
    let dly = step[1] as i64 * dims[0] as i64;
    let dlz = step[2] as i64 * dims[0] as i64 * dims[1] as i64;

    // Scalar per-axis loop state (register-resident; see the doc above).
    let (mut cx, mut cy, mut cz) = (cell[0], cell[1], cell[2]);
    let (mut tmx, mut tmy, mut tmz) = (t_max[0], t_max[1], t_max[2]);
    let (tdx, tdy, tdz) = (t_delta[0], t_delta[1], t_delta[2]);
    let (mut rx, mut ry, mut rz) = (rem[0], rem[1], rem[2]);

    for _ in 0..max_steps {
        steps += 1;
        visit((cx, cy, cz), lin as usize);
        // Advance along the axis with the nearest boundary (the original
        // cascade; ties prefer the lower axis).
        if tmx <= tmy && tmx <= tmz {
            if tmx > t_exit || rx == 0 {
                break;
            }
            rx -= 1;
            tmx += tdx;
            cx += step[0];
            lin += dlx;
        } else if tmy <= tmz {
            if tmy > t_exit || ry == 0 {
                break;
            }
            ry -= 1;
            tmy += tdy;
            cy += step[1];
            lin += dly;
        } else {
            if tmz > t_exit || rz == 0 {
                break;
            }
            rz -= 1;
            tmz += tdz;
            cz += step[2];
            lin += dlz;
        }
    }
    steps
}

/// The pre-overhaul traversal loop, kept verbatim as the bit-exact
/// reference twin. The `payload` bench times [`traverse_append`] against
/// [`reference::traverse_append`] and asserts identical voxel lists and
/// step counts; the property suite does the same over random grids/rays.
pub mod reference {
    use super::{Ray, RayVoxels, VoxelGrid};

    /// Reference twin of [`super::traverse`].
    pub fn traverse(grid: &VoxelGrid, ray: &Ray, max_steps: u32) -> RayVoxels {
        let mut out = RayVoxels::default();
        out.steps = traverse_append(grid, ray, max_steps, &mut out.voxels);
        out
    }

    /// Reference twin of [`super::traverse_append`]: the original step
    /// loop — per-step `voxel_at` (recomputed `(z*ny + y)*nx + x` plus
    /// six-compare bounds test) and the three-way axis cascade.
    pub fn traverse_append(
        grid: &VoxelGrid,
        ray: &Ray,
        max_steps: u32,
        voxels: &mut Vec<u32>,
    ) -> u32 {
        let mut steps = 0u32;
        let bounds = grid.bounds();
        let Some((t_enter, t_exit)) = bounds.intersect_ray(ray) else {
            return steps;
        };
        let t_start = t_enter.max(0.0);
        if t_exit < t_start {
            return steps;
        }

        let (dx, dy, dz) = grid.dims();
        let vs = grid.voxel_size();
        let origin = grid.origin();
        let dir = [ray.dir.x, ray.dir.y, ray.dir.z];
        let org = [ray.origin.x, ray.origin.y, ray.origin.z];
        let grid_org = [origin.x, origin.y, origin.z];
        let dims = [dx as i32, dy as i32, dz as i32];

        let eps = 1e-5 * vs.max(1.0);
        let p = ray.at(t_start);
        let entry = [p.x, p.y, p.z];
        let mut cell = [0i32; 3];
        for a in 0..3 {
            let nudge = if dir[a] > 1e-12 {
                eps
            } else if dir[a] < -1e-12 {
                -eps
            } else {
                0.0
            };
            let mut c = ((entry[a] + nudge - grid_org[a]) / vs).floor() as i32;
            let hi = dims[a] - 1;
            if c < 0 {
                if dir[a] >= -1e-12 && entry[a] >= grid_org[a] - eps {
                    c = 0;
                } else {
                    return steps;
                }
            } else if c > hi {
                let face = grid_org[a] + dims[a] as f32 * vs;
                if dir[a] <= 1e-12 && entry[a] <= face + eps {
                    c = hi;
                } else {
                    return steps;
                }
            }
            cell[a] = c;
        }

        let mut step = [0i32; 3];
        let mut t_max = [f32::INFINITY; 3];
        let mut t_delta = [f32::INFINITY; 3];
        for a in 0..3 {
            if dir[a] > 1e-12 {
                step[a] = 1;
                let boundary = grid_org[a] + (cell[a] + 1) as f32 * vs;
                t_max[a] = (boundary - org[a]) / dir[a];
                t_delta[a] = vs / dir[a];
            } else if dir[a] < -1e-12 {
                step[a] = -1;
                let boundary = grid_org[a] + cell[a] as f32 * vs;
                t_max[a] = (boundary - org[a]) / dir[a];
                t_delta[a] = vs / -dir[a];
            }
        }

        let (mut cx, mut cy, mut cz) = (cell[0], cell[1], cell[2]);
        for _ in 0..max_steps {
            steps += 1;
            if let Some(v) = grid.voxel_at((cx, cy, cz)) {
                voxels.push(v);
            }
            let axis = if t_max[0] <= t_max[1] && t_max[0] <= t_max[2] {
                0
            } else if t_max[1] <= t_max[2] {
                1
            } else {
                2
            };
            if t_max[axis] > t_exit {
                break;
            }
            t_max[axis] += t_delta[axis];
            match axis {
                0 => cx += step[0],
                1 => cy += step[1],
                _ => cz += step[2],
            }
            if cx < 0 || cy < 0 || cz < 0 || cx >= dx as i32 || cy >= dy as i32 || cz >= dz as i32 {
                break;
            }
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_core::vec::Vec3;
    use gs_scene::{Gaussian, GaussianCloud};

    /// A 4×1×1 row of occupied voxels at y=z=0.5.
    fn row_grid() -> (GaussianCloud, VoxelGrid) {
        let mut c = GaussianCloud::new();
        for x in 0..4 {
            c.push(Gaussian::isotropic(
                Vec3::new(x as f32 + 0.5, 0.5, 0.5),
                0.05,
                Vec3::ONE,
                0.9,
            ));
        }
        let g = VoxelGrid::build(&c, 1.0);
        (c, g)
    }

    #[test]
    fn axis_ray_visits_all_cells_in_order() {
        let (_, grid) = row_grid();
        let ray = Ray::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::X);
        let r = traverse(&grid, &ray, 100);
        assert_eq!(r.voxels.len(), 4);
        // Front-to-back: voxel centres must be monotonically farther.
        let mut last = f32::NEG_INFINITY;
        for &v in &r.voxels {
            let d = (grid.voxel_center(v) - ray.origin).dot(ray.dir);
            assert!(d > last);
            last = d;
        }
    }

    #[test]
    fn reverse_ray_visits_reverse_order() {
        let (_, grid) = row_grid();
        let fwd = traverse(&grid, &Ray::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::X), 100);
        let bwd = traverse(&grid, &Ray::new(Vec3::new(5.0, 0.5, 0.5), -Vec3::X), 100);
        let mut rev = bwd.voxels.clone();
        rev.reverse();
        assert_eq!(fwd.voxels, rev);
    }

    #[test]
    fn missing_ray_returns_empty() {
        let (_, grid) = row_grid();
        let r = traverse(&grid, &Ray::new(Vec3::new(0.0, 10.0, 0.0), Vec3::X), 100);
        assert!(r.voxels.is_empty());
        assert_eq!(r.steps, 0);
    }

    #[test]
    fn ray_starting_inside_works() {
        let (_, grid) = row_grid();
        let r = traverse(&grid, &Ray::new(Vec3::new(1.5, 0.5, 0.5), Vec3::X), 100);
        assert_eq!(
            r.voxels.len(),
            3,
            "voxels 1..=3 visible from inside voxel 1"
        );
    }

    #[test]
    fn diagonal_ray_monotone_depth() {
        // A 3×3×3 block of occupied voxels.
        let mut c = GaussianCloud::new();
        for x in 0..3 {
            for y in 0..3 {
                for z in 0..3 {
                    c.push(Gaussian::isotropic(
                        Vec3::new(x as f32 + 0.5, y as f32 + 0.5, z as f32 + 0.5),
                        0.05,
                        Vec3::ONE,
                        0.9,
                    ));
                }
            }
        }
        let grid = VoxelGrid::build(&c, 1.0);
        let dir = Vec3::new(1.0, 0.7, 0.4).normalized();
        let ray = Ray::new(Vec3::new(-0.5, -0.2, 0.1), dir);
        let r = traverse(&grid, &ray, 1000);
        assert!(!r.voxels.is_empty());
        let mut last = f32::NEG_INFINITY;
        for &v in &r.voxels {
            let d = (grid.voxel_center(v) - ray.origin).dot(ray.dir);
            assert!(
                d > last - 0.87,
                "non-monotone visit (allowing half-diagonal slack)"
            );
            last = last.max(d);
        }
        // No voxel repeated.
        let mut sorted = r.voxels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), r.voxels.len());
    }

    #[test]
    fn traversal_matches_brute_force_sampling() {
        // Property-style check: dense point sampling along the ray must find
        // a subset of the cells DDA reports.
        let (_, grid) = row_grid();
        let dir = Vec3::new(1.0, 0.12, -0.07).normalized();
        let ray = Ray::new(Vec3::new(-0.8, 0.4, 0.62), dir);
        let dda = traverse(&grid, &ray, 1000);
        let mut sampled = Vec::new();
        let mut t = 0.0f32;
        while t < 8.0 {
            let p = ray.at(t);
            if let Some(v) = grid.voxel_at(grid.cell_of(p)) {
                if sampled.last() != Some(&v) {
                    sampled.push(v);
                }
            }
            t += 0.01;
        }
        for v in &sampled {
            assert!(dda.voxels.contains(v), "DDA missed voxel {v}");
        }
    }

    #[test]
    fn corner_grazing_exit_ray_reports_nothing() {
        // The ray reaches the grid's entry corner (x_min, y_max) exactly
        // while moving *out* of the y-range: the box test reports a
        // single-point contact (t_enter == t_exit), and the seed's clamp
        // then pulled the nudged point back into the top row — reporting a
        // voxel whose interior the ray never enters. The per-axis entry
        // rule returns an empty visit list instead.
        let (_, grid) = row_grid();
        let b = grid.bounds();
        let z = 0.5 * (b.min.z + b.max.z);
        // y(t) = (y_max − 0.1) + 0.1·t reaches y_max exactly when x
        // reaches x_min (both at t = 1), then keeps climbing.
        let ray = Ray::new(
            Vec3::new(b.min.x - 1.0, b.max.y - 0.1, z),
            Vec3::new(1.0, 0.1, 0.0),
        );
        let r = traverse(&grid, &ray, 100);
        assert!(
            r.voxels.is_empty(),
            "corner-touching exiting ray must enter no cell, got {:?}",
            r.voxels
        );
    }

    #[test]
    fn ray_along_max_face_visits_boundary_cells() {
        // Axis-aligned ray exactly on the top face (y = y_max): the closed
        // box reports a hit and the face belongs to the adjacent inner
        // cells — the grazing rule must keep (not clamp-invent) this row.
        let (_, grid) = row_grid();
        let b = grid.bounds();
        let z = 0.5 * (b.min.z + b.max.z);
        let top = traverse(
            &grid,
            &Ray::new(Vec3::new(b.min.x - 1.0, b.max.y, z), Vec3::X),
            100,
        );
        assert_eq!(top.voxels.len(), 4, "top-face ray grazes all four cells");
        // And the min face (y = y_min) belongs to cell row 0 just the same.
        let bottom = traverse(
            &grid,
            &Ray::new(Vec3::new(b.min.x - 1.0, b.min.y, z), Vec3::X),
            100,
        );
        assert_eq!(bottom.voxels.len(), 4);
    }

    #[test]
    fn grazing_ray_drifting_inward_still_traverses() {
        // Entering exactly at the corner but moving *into* the grid: a
        // legitimate traversal that the per-axis rule must keep.
        let (_, grid) = row_grid();
        let b = grid.bounds();
        let z = 0.5 * (b.min.z + b.max.z);
        // y(t) = (y_max + 0.05) − 0.05·t hits y_max exactly when x reaches
        // x_min (t = 1), then keeps dropping into the row.
        let ray = Ray::new(
            Vec3::new(b.min.x - 1.0, b.max.y + 0.05, z),
            Vec3::new(1.0, -0.05, 0.0),
        );
        let r = traverse(&grid, &ray, 100);
        assert!(
            !r.voxels.is_empty(),
            "inward-drifting corner entry must traverse"
        );
        // Every reported voxel must genuinely be intersected by the ray.
        for &v in &r.voxels {
            assert!(
                grid.voxel_aabb(v).intersect_ray(&ray).is_some(),
                "reported voxel {v} not on the ray"
            );
        }
    }

    #[test]
    fn max_steps_bounds_work() {
        let (_, grid) = row_grid();
        let ray = Ray::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::X);
        let r = traverse(&grid, &ray, 2);
        assert!(r.steps <= 2);
        assert!(r.voxels.len() <= 2);
    }

    #[test]
    fn production_matches_reference_twin_on_awkward_rays() {
        // The marcher must agree with the kept original loop step for step:
        // identical voxel lists *and* identical step counts, including on
        // the grazing / corner / truncated cases above.
        let (_, grid) = row_grid();
        let b = grid.bounds();
        let z = 0.5 * (b.min.z + b.max.z);
        let rays = [
            Ray::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::X),
            Ray::new(Vec3::new(5.0, 0.5, 0.5), -Vec3::X),
            Ray::new(Vec3::new(1.5, 0.5, 0.5), Vec3::X),
            Ray::new(Vec3::new(0.0, 10.0, 0.0), Vec3::X),
            Ray::new(
                Vec3::new(-0.8, 0.4, 0.62),
                Vec3::new(1.0, 0.12, -0.07).normalized(),
            ),
            Ray::new(
                Vec3::new(b.min.x - 1.0, b.max.y - 0.1, z),
                Vec3::new(1.0, 0.1, 0.0),
            ),
            Ray::new(Vec3::new(b.min.x - 1.0, b.max.y, z), Vec3::X),
            Ray::new(
                Vec3::new(b.min.x - 1.0, b.max.y + 0.05, z),
                Vec3::new(1.0, -0.05, 0.0),
            ),
        ];
        for ray in &rays {
            for max_steps in [2u32, 100] {
                assert_eq!(
                    traverse(&grid, ray, max_steps),
                    reference::traverse(&grid, ray, max_steps),
                    "marcher diverged from reference on {ray:?} (max_steps {max_steps})"
                );
            }
        }
    }

    #[test]
    fn incremental_linear_index_matches_recomputation() {
        let (_, grid) = row_grid();
        let (nx, ny, _) = grid.dims();
        let dir = Vec3::new(1.0, 0.12, -0.07).normalized();
        let ray = Ray::new(Vec3::new(-0.8, 0.4, 0.62), dir);
        let mut cells = Vec::new();
        let steps = traverse_cells(&grid, &ray, 1000, &mut cells);
        assert_eq!(steps as usize, cells.len());
        assert!(!cells.is_empty());
        for &((x, y, z), lin) in &cells {
            let expect = (z as usize * ny as usize + y as usize) * nx as usize + x as usize;
            assert_eq!(
                lin,
                expect,
                "incremental index drifted at cell {:?}",
                (x, y, z)
            );
        }
    }
}
