//! Global voxel ordering: per-ray lists → DAG → topological sort.
//!
//! Pixels in a group intersect different voxel sequences; the tile needs one
//! global order that respects every pixel's front-to-back order (paper
//! Sec. III-B, "Inter-Voxel Order"). Consecutive voxels in a ray's list
//! become DAG edges; Kahn's algorithm produces the order. Coherent tile rays
//! normally yield an acyclic graph, but wide tiles can produce cycles — we
//! break those by releasing the remaining node nearest to the camera
//! (smallest reference depth) and record the event.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Result of ordering one tile's voxels.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VoxelOrder {
    /// Voxel ids in rendering order.
    pub order: Vec<u32>,
    /// Number of unique dependency edges in the DAG.
    pub edges: u32,
    /// Number of cycle-break events (0 for a true DAG).
    pub cycle_breaks: u32,
}

/// Builds the global order from per-ray voxel lists.
///
/// `depth_of(v)` supplies a reference depth per voxel (distance of its centre
/// from the camera) used to (a) order independent voxels deterministically
/// front-to-back and (b) break cycles.
pub fn topological_order<F: Fn(u32) -> f32>(ray_lists: &[Vec<u32>], depth_of: F) -> VoxelOrder {
    // Collect nodes and unique edges.
    let mut in_degree: HashMap<u32, u32> = HashMap::new();
    let mut adj: HashMap<u32, Vec<u32>> = HashMap::new();
    let mut edge_set: HashMap<(u32, u32), ()> = HashMap::new();

    for list in ray_lists {
        for &v in list {
            in_degree.entry(v).or_insert(0);
        }
        for w in list.windows(2) {
            let (a, b) = (w[0], w[1]);
            if a == b {
                continue;
            }
            if let Entry::Vacant(e) = edge_set.entry((a, b)) {
                e.insert(());
                adj.entry(a).or_default().push(b);
                *in_degree.entry(b).or_insert(0) += 1;
            }
        }
    }
    let edges = edge_set.len() as u32;
    let n = in_degree.len();

    // Ready set ordered by reference depth (front first). BinaryHeap is a
    // max-heap, so invert the comparison via Reverse on ordered bits.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let depth_key = |v: u32| -> u32 { depth_of(v).max(0.0).to_bits() };
    let mut ready: BinaryHeap<Reverse<(u32, u32)>> = in_degree
        .iter()
        .filter(|(_, d)| **d == 0)
        .map(|(v, _)| Reverse((depth_key(*v), *v)))
        .collect();

    let mut order = Vec::with_capacity(n);
    let mut cycle_breaks = 0u32;
    let mut remaining = in_degree.clone();
    remaining.retain(|_, d| *d > 0);

    while order.len() < n {
        let next = match ready.pop() {
            Some(Reverse((_, v))) => v,
            None => {
                // Cycle: release the nearest remaining voxel.
                let v = *remaining
                    .keys()
                    .min_by_key(|v| (depth_key(**v), **v))
                    .expect("remaining nodes exist while order is incomplete");
                remaining.remove(&v);
                cycle_breaks += 1;
                v
            }
        };
        // A node may be popped after having been force-released; skip dupes.
        if order.contains(&next) {
            continue;
        }
        order.push(next);
        if let Some(succs) = adj.get(&next) {
            for &s in succs {
                if let Some(d) = remaining.get_mut(&s) {
                    *d -= 1;
                    if *d == 0 {
                        remaining.remove(&s);
                        ready.push(Reverse((depth_key(s), s)));
                    }
                }
            }
        }
    }

    VoxelOrder {
        order,
        edges,
        cycle_breaks,
    }
}

/// Verifies that `order` respects every consecutive constraint in
/// `ray_lists`; returns the number of violated pairs (0 = perfect).
pub fn count_order_violations(ray_lists: &[Vec<u32>], order: &[u32]) -> usize {
    let pos: HashMap<u32, usize> = order.iter().enumerate().map(|(i, v)| (*v, i)).collect();
    let mut violations = 0;
    for list in ray_lists {
        for w in list.windows(2) {
            if w[0] == w[1] {
                continue;
            }
            match (pos.get(&w[0]), pos.get(&w[1])) {
                (Some(a), Some(b)) if a >= b => violations += 1,
                (None, _) | (_, None) => violations += 1,
                _ => {}
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_id(v: u32) -> f32 {
        v as f32
    }

    #[test]
    fn single_ray_preserves_its_order() {
        let lists = vec![vec![3, 1, 4, 2]];
        let r = topological_order(&lists, by_id);
        assert_eq!(r.order, vec![3, 1, 4, 2]);
        assert_eq!(r.cycle_breaks, 0);
        assert_eq!(count_order_violations(&lists, &r.order), 0);
    }

    #[test]
    fn merges_consistent_rays() {
        // Paper Fig. 5: R0=[4,5,2,3], R1=[4,5,6,3], R2=[4,5,6] →
        // one valid global order is 4,5,2,6,3 (or 4,5,6,2,3).
        let lists = vec![vec![4, 5, 2, 3], vec![4, 5, 6, 3], vec![4, 5, 6]];
        let r = topological_order(&lists, by_id);
        assert_eq!(r.cycle_breaks, 0);
        assert_eq!(count_order_violations(&lists, &r.order), 0);
        assert_eq!(r.order.len(), 5);
        assert_eq!(r.order[0], 4);
        assert_eq!(r.order[1], 5);
        assert_eq!(*r.order.last().unwrap(), 3);
    }

    #[test]
    fn independent_nodes_sorted_by_depth() {
        let lists = vec![vec![7], vec![2], vec![5]];
        let r = topological_order(&lists, by_id);
        assert_eq!(r.order, vec![2, 5, 7]);
        assert_eq!(r.edges, 0);
    }

    #[test]
    fn cycle_is_broken_near_first() {
        // Contradictory rays: 1→2 and 2→1.
        let lists = vec![vec![1, 2], vec![2, 1]];
        let r = topological_order(&lists, by_id);
        assert_eq!(r.order.len(), 2);
        assert!(r.cycle_breaks >= 1);
        // The nearer voxel (smaller depth) must come first.
        assert_eq!(r.order[0], 1);
    }

    #[test]
    fn duplicate_edges_counted_once() {
        let lists = vec![vec![1, 2], vec![1, 2], vec![1, 2]];
        let r = topological_order(&lists, by_id);
        assert_eq!(r.edges, 1);
    }

    #[test]
    fn empty_input_is_empty_order() {
        let r = topological_order(&[], by_id);
        assert!(r.order.is_empty());
    }

    #[test]
    fn violation_counter_detects_bad_order() {
        let lists = vec![vec![1, 2, 3]];
        assert_eq!(count_order_violations(&lists, &[3, 2, 1]), 2);
        assert_eq!(count_order_violations(&lists, &[1, 2, 3]), 0);
        // Missing node counts as violation.
        assert_eq!(count_order_violations(&lists, &[1, 2]), 1);
    }

    #[test]
    fn long_chain_many_rays() {
        // 50 rays over a 30-node chain with random suffixes stays acyclic.
        let mut lists = Vec::new();
        for start in 0..20u32 {
            lists.push((start..30).collect::<Vec<_>>());
        }
        let r = topological_order(&lists, by_id);
        assert_eq!(r.cycle_breaks, 0);
        assert_eq!(count_order_violations(&lists, &r.order), 0);
        assert_eq!(r.order, (0..30).collect::<Vec<_>>());
    }
}
