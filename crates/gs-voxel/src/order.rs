//! Global voxel ordering: per-ray lists → DAG → topological sort.
//!
//! Pixels in a group intersect different voxel sequences; the tile needs one
//! global order that respects every pixel's front-to-back order (paper
//! Sec. III-B, "Inter-Voxel Order"). Consecutive voxels in a ray's list
//! become DAG edges; Kahn's algorithm produces the order. Coherent tile rays
//! normally yield an acyclic graph, but wide tiles can produce cycles — we
//! break those by releasing the remaining node nearest to the camera
//! (smallest reference depth) and record the event.
//!
//! The seed implementation rebuilt hash maps (`in_degree`, `adj`,
//! `edge_set`) for every pixel group and deduplicated force-released nodes
//! with an O(n²) `order.contains` scan. The hot path now runs on a
//! reusable [`OrderScratch`]: voxel ids are remapped to dense local indices
//! through an epoch-stamped table, edges live in one sorted+deduplicated
//! CSR-style list, duplicate emissions are caught by an `emitted` bitmap,
//! and every buffer (including the ready heap) keeps its capacity across
//! calls — steady-state ordering performs **zero allocations**.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// Result of ordering one tile's voxels.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VoxelOrder {
    /// Voxel ids in rendering order.
    pub order: Vec<u32>,
    /// Number of unique dependency edges in the DAG.
    pub edges: u32,
    /// Number of cycle-break events (0 for a true DAG).
    pub cycle_breaks: u32,
}

/// Counters from one [`topological_order_into`] run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct OrderStats {
    /// Number of unique dependency edges in the DAG.
    pub edges: u32,
    /// Number of cycle-break events (0 for a true DAG).
    pub cycle_breaks: u32,
    /// Ordering work performed: nodes emitted plus edges relaxed — the
    /// VSU's sort-stage work measure for the accelerator model.
    pub ops: u64,
}

/// Reusable working state for [`topological_order_into`].
///
/// All buffers only ever grow; after the first few groups of a frame the
/// ordering path allocates nothing. The id→local mapping is invalidated in
/// O(1) per call by bumping `epoch` instead of clearing the table.
#[derive(Clone, Debug, Default)]
pub struct OrderScratch {
    /// Voxel id → local index; valid only when `stamp[id] == epoch`.
    local: Vec<u32>,
    /// Epoch stamp per voxel id slot.
    stamp: Vec<u32>,
    /// Current call's epoch.
    epoch: u32,
    /// Local index → voxel id.
    ids: Vec<u32>,
    /// Local index → depth key bits (see `depth_key`).
    depth: Vec<u32>,
    /// Local index → remaining in-degree during Kahn's algorithm.
    in_degree: Vec<u32>,
    /// Unique DAG edges as local `(from, to)` pairs, sorted; doubles as the
    /// CSR adjacency payload (a node's successors are one contiguous run).
    edges: Vec<(u32, u32)>,
    /// CSR offsets into `edges` (length `n + 1`).
    adj_off: Vec<u32>,
    /// Local index → already emitted to the order (replaces the seed's
    /// quadratic `order.contains(&next)` scan).
    emitted: Vec<bool>,
    /// Ready set ordered by `(depth key, voxel id)`, front first.
    ready: BinaryHeap<Reverse<(u32, u32)>>,
}

impl OrderScratch {
    /// A fresh scratch (buffers grow on first use).
    pub fn new() -> OrderScratch {
        OrderScratch::default()
    }

    /// Maps a voxel id to its dense local index, interning it on first
    /// sight in this epoch.
    fn intern(&mut self, id: u32, depth_key: impl Fn(u32) -> u32) -> u32 {
        let slot = id as usize;
        if slot >= self.local.len() {
            self.local.resize(slot + 1, 0);
            self.stamp.resize(slot + 1, 0);
        }
        if self.stamp[slot] == self.epoch {
            return self.local[slot];
        }
        let l = self.ids.len() as u32;
        self.stamp[slot] = self.epoch;
        self.local[slot] = l;
        self.ids.push(id);
        self.depth.push(depth_key(id));
        l
    }

    /// Begins a new epoch, resetting the per-call buffers without freeing.
    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // u32 epoch wrapped: old stamps could alias. Reset once.
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.ids.clear();
        self.depth.clear();
        self.edges.clear();
        self.ready.clear();
    }
}

/// Converts a reference depth to monotone, totally ordered key bits
/// (positive IEEE-754 floats compare like their bit patterns).
fn depth_key(d: f32) -> u32 {
    d.max(0.0).to_bits()
}

/// Builds the global order from per-ray voxel lists.
///
/// `depth_of(v)` supplies a reference depth per voxel (distance of its centre
/// from the camera) used to (a) order independent voxels deterministically
/// front-to-back and (b) break cycles.
///
/// Convenience wrapper over [`topological_order_into`] that allocates a
/// fresh [`OrderScratch`] per call; hot paths should hold a scratch and an
/// output buffer and call the `_into` variant directly.
pub fn topological_order<F: Fn(u32) -> f32>(ray_lists: &[Vec<u32>], depth_of: F) -> VoxelOrder {
    let mut scratch = OrderScratch::new();
    let mut order = Vec::new();
    let stats = topological_order_into(ray_lists, depth_of, &mut scratch, &mut order);
    VoxelOrder {
        order,
        edges: stats.edges,
        cycle_breaks: stats.cycle_breaks,
    }
}

/// [`topological_order`] into caller-owned buffers: the voxel order is
/// written to `out` (cleared first) and all intermediate state lives in
/// `scratch`, so repeated calls allocate nothing once the buffers warmed
/// up. Output is identical to [`topological_order`] — dense local indices
/// change the bookkeeping, not the `(depth, voxel id)` tie-breaking.
///
/// `ray_lists` is anything that yields per-ray voxel slices (``&[Vec<u32>]``
/// works as before; the streaming renderer feeds flat per-chunk ray buffers
/// without materializing one `Vec` per ray). Only the concatenation of rays
/// matters, not how they are batched.
pub fn topological_order_into<I, F>(
    ray_lists: I,
    depth_of: F,
    scratch: &mut OrderScratch,
    out: &mut Vec<u32>,
) -> OrderStats
where
    I: IntoIterator,
    I::Item: AsRef<[u32]>,
    F: Fn(u32) -> f32,
{
    out.clear();
    scratch.begin();

    // Collect nodes and raw edges (consecutive pairs per ray).
    for list in ray_lists {
        let mut prev: Option<u32> = None;
        for &v in list.as_ref() {
            let l = scratch.intern(v, |id| depth_key(depth_of(id)));
            if let Some(p) = prev {
                if p != l {
                    scratch.edges.push((p, l));
                }
            }
            prev = Some(l);
        }
    }
    let n = scratch.ids.len();

    // Deduplicate edges in place; sorted edges are CSR-ready (a node's
    // successors form one contiguous run).
    scratch.edges.sort_unstable();
    scratch.edges.dedup();
    let edges = scratch.edges.len() as u32;

    scratch.in_degree.clear();
    scratch.in_degree.resize(n, 0);
    for &(_, b) in &scratch.edges {
        scratch.in_degree[b as usize] += 1;
    }
    scratch.adj_off.clear();
    scratch.adj_off.resize(n + 1, 0);
    for &(a, _) in &scratch.edges {
        scratch.adj_off[a as usize + 1] += 1;
    }
    for i in 0..n {
        scratch.adj_off[i + 1] += scratch.adj_off[i];
    }

    scratch.emitted.clear();
    scratch.emitted.resize(n, false);
    for l in 0..n {
        if scratch.in_degree[l] == 0 {
            scratch
                .ready
                .push(Reverse((scratch.depth[l], scratch.ids[l])));
        }
    }

    let mut cycle_breaks = 0u32;
    let mut ops = 0u64;
    if out.capacity() < n {
        out.reserve(n);
    }
    while out.len() < n {
        let l = match scratch.ready.pop() {
            Some(Reverse((_, id))) => scratch.local[id as usize],
            None => {
                // Cycle: release the nearest unemitted voxel (all unemitted
                // nodes have in-degree > 0 here, or they would be ready).
                let mut best: Option<u32> = None;
                for cand in 0..n as u32 {
                    let ci = cand as usize;
                    if scratch.emitted[ci] {
                        continue;
                    }
                    let key = (scratch.depth[ci], scratch.ids[ci]);
                    if best
                        .is_none_or(|b| key < (scratch.depth[b as usize], scratch.ids[b as usize]))
                    {
                        best = Some(cand);
                    }
                }
                let l = match best {
                    Some(l) => l,
                    // `out.len() < n` ⇒ some node is unemitted, so the
                    // scan above always finds a candidate.
                    None => unreachable!("unemitted nodes exist while order is incomplete"),
                };
                // Zeroing the in-degree mirrors the seed's removal from the
                // `remaining` map: later decrements are ignored and the node
                // never re-enters the ready set.
                scratch.in_degree[l as usize] = 0;
                cycle_breaks += 1;
                l
            }
        };
        let li = l as usize;
        // A node may be popped after having been force-released; the
        // emitted bitmap replaces the seed's O(n²) `order.contains` scan.
        if scratch.emitted[li] {
            continue;
        }
        scratch.emitted[li] = true;
        out.push(scratch.ids[li]);
        ops += 1;
        let (s, e) = (
            scratch.adj_off[li] as usize,
            scratch.adj_off[li + 1] as usize,
        );
        for k in s..e {
            let succ = scratch.edges[k].1 as usize;
            ops += 1;
            if !scratch.emitted[succ] && scratch.in_degree[succ] > 0 {
                scratch.in_degree[succ] -= 1;
                if scratch.in_degree[succ] == 0 {
                    scratch
                        .ready
                        .push(Reverse((scratch.depth[succ], scratch.ids[succ])));
                }
            }
        }
    }

    OrderStats {
        edges,
        cycle_breaks,
        ops,
    }
}

/// Verifies that `order` respects every consecutive constraint in
/// `ray_lists`; returns the number of violated pairs (0 = perfect).
pub fn count_order_violations(ray_lists: &[Vec<u32>], order: &[u32]) -> usize {
    let pos: HashMap<u32, usize> = order.iter().enumerate().map(|(i, v)| (*v, i)).collect();
    let mut violations = 0;
    for list in ray_lists {
        for w in list.windows(2) {
            if w[0] == w[1] {
                continue;
            }
            match (pos.get(&w[0]), pos.get(&w[1])) {
                (Some(a), Some(b)) if a >= b => violations += 1,
                (None, _) | (_, None) => violations += 1,
                _ => {}
            }
        }
    }
    violations
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn by_id(v: u32) -> f32 {
        v as f32
    }

    #[test]
    fn single_ray_preserves_its_order() {
        let lists = vec![vec![3, 1, 4, 2]];
        let r = topological_order(&lists, by_id);
        assert_eq!(r.order, vec![3, 1, 4, 2]);
        assert_eq!(r.cycle_breaks, 0);
        assert_eq!(count_order_violations(&lists, &r.order), 0);
    }

    #[test]
    fn merges_consistent_rays() {
        // Paper Fig. 5: R0=[4,5,2,3], R1=[4,5,6,3], R2=[4,5,6] →
        // one valid global order is 4,5,2,6,3 (or 4,5,6,2,3).
        let lists = vec![vec![4, 5, 2, 3], vec![4, 5, 6, 3], vec![4, 5, 6]];
        let r = topological_order(&lists, by_id);
        assert_eq!(r.cycle_breaks, 0);
        assert_eq!(count_order_violations(&lists, &r.order), 0);
        assert_eq!(r.order.len(), 5);
        assert_eq!(r.order[0], 4);
        assert_eq!(r.order[1], 5);
        assert_eq!(*r.order.last().unwrap(), 3);
    }

    #[test]
    fn independent_nodes_sorted_by_depth() {
        let lists = vec![vec![7], vec![2], vec![5]];
        let r = topological_order(&lists, by_id);
        assert_eq!(r.order, vec![2, 5, 7]);
        assert_eq!(r.edges, 0);
    }

    #[test]
    fn cycle_is_broken_near_first() {
        // Contradictory rays: 1→2 and 2→1.
        let lists = vec![vec![1, 2], vec![2, 1]];
        let r = topological_order(&lists, by_id);
        assert_eq!(r.order.len(), 2);
        assert!(r.cycle_breaks >= 1);
        // The nearer voxel (smaller depth) must come first.
        assert_eq!(r.order[0], 1);
    }

    #[test]
    fn duplicate_edges_counted_once() {
        let lists = vec![vec![1, 2], vec![1, 2], vec![1, 2]];
        let r = topological_order(&lists, by_id);
        assert_eq!(r.edges, 1);
    }

    #[test]
    fn empty_input_is_empty_order() {
        let r = topological_order(&[], by_id);
        assert!(r.order.is_empty());
    }

    #[test]
    fn violation_counter_detects_bad_order() {
        let lists = vec![vec![1, 2, 3]];
        assert_eq!(count_order_violations(&lists, &[3, 2, 1]), 2);
        assert_eq!(count_order_violations(&lists, &[1, 2, 3]), 0);
        // Missing node counts as violation.
        assert_eq!(count_order_violations(&lists, &[1, 2]), 1);
    }

    #[test]
    fn long_chain_many_rays() {
        // 50 rays over a 30-node chain with random suffixes stays acyclic.
        let mut lists = Vec::new();
        for start in 0..20u32 {
            lists.push((start..30).collect::<Vec<_>>());
        }
        let r = topological_order(&lists, by_id);
        assert_eq!(r.cycle_breaks, 0);
        assert_eq!(count_order_violations(&lists, &r.order), 0);
        assert_eq!(r.order, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        // One scratch across many differently-shaped inputs must behave
        // exactly like fresh per-call state (epoch invalidation, buffer
        // reuse, heap leftovers).
        let inputs: Vec<Vec<Vec<u32>>> = vec![
            vec![vec![3, 1, 4, 2]],
            vec![vec![4, 5, 2, 3], vec![4, 5, 6, 3], vec![4, 5, 6]],
            vec![vec![1, 2], vec![2, 1]],
            vec![],
            vec![vec![7], vec![2], vec![5]],
            vec![vec![9, 8, 7, 6, 5], vec![9, 8, 7], vec![5, 4]],
        ];
        let mut scratch = OrderScratch::new();
        let mut out = Vec::new();
        for lists in &inputs {
            let fresh = topological_order(lists, by_id);
            let stats = topological_order_into(lists, by_id, &mut scratch, &mut out);
            assert_eq!(out, fresh.order);
            assert_eq!(stats.edges, fresh.edges);
            assert_eq!(stats.cycle_breaks, fresh.cycle_breaks);
        }
    }

    #[test]
    fn large_cyclic_ray_set_completes_without_quadratic_dedup() {
        // Regression for the seed's `order.contains(&next)` scan: a large
        // set of contradictory rays forces many cycle breaks; the emitted
        // bitmap keeps this O(n + E) instead of O(n²) per forced release.
        // (With n = 4000 the seed's quadratic scan made this take seconds.)
        let n: u32 = 4000;
        // A long forward chain 0..n and the full reverse chain,
        // contradicting every edge.
        let lists = vec![(0..n).collect::<Vec<_>>(), (0..n).rev().collect::<Vec<_>>()];
        let start = std::time::Instant::now();
        let r = topological_order(&lists, by_id);
        assert_eq!(r.order.len(), n as usize);
        assert!(r.cycle_breaks > 0, "reverse chain must force releases");
        // No duplicates despite every node being force-release-eligible.
        let mut sorted = r.order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), n as usize);
        // Generous wall-clock guard: quadratic behaviour took whole seconds
        // at this size; the linear path finishes in milliseconds.
        assert!(
            start.elapsed().as_secs_f64() < 5.0,
            "ordering degenerated: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn steady_state_ordering_keeps_capacities() {
        // Warm the scratch with the largest input, then re-run: every
        // internal buffer must keep its capacity (zero steady-state
        // allocations; the allocation counter test in
        // `tests/alloc_free_order.rs` proves the stronger property).
        let lists: Vec<Vec<u32>> = (0..16u32)
            .map(|r| (r..r + 40).collect::<Vec<u32>>())
            .collect();
        let mut scratch = OrderScratch::new();
        let mut out = Vec::new();
        topological_order_into(&lists, by_id, &mut scratch, &mut out);
        let caps = (
            scratch.local.capacity(),
            scratch.stamp.capacity(),
            scratch.ids.capacity(),
            scratch.depth.capacity(),
            scratch.in_degree.capacity(),
            scratch.edges.capacity(),
            scratch.adj_off.capacity(),
            scratch.emitted.capacity(),
            out.capacity(),
        );
        for _ in 0..5 {
            topological_order_into(&lists, by_id, &mut scratch, &mut out);
        }
        assert_eq!(
            caps,
            (
                scratch.local.capacity(),
                scratch.stamp.capacity(),
                scratch.ids.capacity(),
                scratch.depth.capacity(),
                scratch.in_degree.capacity(),
                scratch.edges.capacity(),
                scratch.adj_off.capacity(),
                scratch.emitted.capacity(),
                out.capacity(),
            ),
            "steady-state ordering must not grow any buffer"
        );
    }
}
