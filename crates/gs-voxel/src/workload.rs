//! Workload records the streaming pipeline emits for the accelerator model.
//!
//! The byte counters (`coarse_bytes`, `fine_bytes`, `pixel_bytes`) are
//! *derived* from the frame's [`TrafficLedger`] stages — the renderer
//! meters every store fetch and pixel writeback into per-worker ledgers
//! and reads the per-tile counters back out of them, so ledger totals and
//! workload totals agree exactly by construction. [`FrameWorkload::to_ledger`]
//! converts in the other direction (e.g. after workload extrapolation).

use gs_mem::{Direction, Stage, TrafficLedger, MAX_TIERS};
use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// Everything one tile did — the per-tile input to the timing model.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileWorkload {
    /// Pixel rays sampled by the VSU.
    pub rays: u32,
    /// DDA steps across all rays (VSU ray-sample work).
    pub dda_steps: u64,
    /// Distinct voxels intersected by the tile.
    pub voxels_intersected: u32,
    /// Unique DAG edges among them.
    pub dag_edges: u32,
    /// Cycle-break events during the topological sort.
    pub cycle_breaks: u32,
    /// Topological-ordering work: nodes emitted plus edges relaxed by
    /// Kahn's algorithm (the VSU ordering-stage work measure).
    pub order_ops: u64,
    /// Voxels actually streamed (≤ intersected thanks to early termination).
    pub voxels_processed: u32,
    /// Gaussian records streamed from DRAM (coarse phase).
    pub gaussians_streamed: u64,
    /// Gaussians passing the coarse filter (fine records fetched).
    pub coarse_survivors: u64,
    /// Gaussians passing the fine filter (sorted + rendered).
    pub fine_survivors: u64,
    /// Largest per-voxel survivor count sorted at once.
    pub max_sort_batch: u32,
    /// (splat, pixel) lanes evaluated by the render array.
    pub blend_lanes: u64,
    /// Fragments actually blended (alpha above threshold).
    pub blend_fragments: u64,
    /// Demand bytes fetched for the coarse phase.
    pub coarse_bytes: u64,
    /// Demand bytes fetched for the fine phase.
    pub fine_bytes: u64,
    /// Demand bytes written for final pixels.
    pub pixel_bytes: u64,
    /// Coarse-phase DRAM *transaction* bytes: burst-rounded per transfer,
    /// cache-miss fills only when the renderer's working-set cache is
    /// enabled. Derived from the ledger's DRAM counters, like the demand
    /// bytes above. Zero in pre-cache workloads (the model then falls
    /// back to demand bytes).
    pub coarse_dram_bytes: u64,
    /// Fine-phase DRAM transaction bytes (see `coarse_dram_bytes`).
    pub fine_dram_bytes: u64,
    /// Pixel-writeback DRAM transaction bytes (burst-rounded; the
    /// writeback is never cached).
    pub pixel_dram_bytes: u64,
    /// Coarse-phase demand bytes served on-chip by the working-set cache.
    pub coarse_hit_bytes: u64,
    /// Fine-phase demand bytes served on-chip by the working-set cache.
    pub fine_hit_bytes: u64,
    /// Fine-phase demand bytes split by quality tier (lane 0 = the
    /// full-quality column, lanes 1.. = the LOD tiers); the lanes sum to
    /// `fine_bytes` on tiered-renderer tiles and are all-zero on legacy
    /// tiles, where [`FrameWorkload::to_ledger`] attributes the fine
    /// demand to tier 0.
    pub fine_tier_bytes: [u64; MAX_TIERS],
    /// Fine-phase DRAM transaction bytes split by quality tier (see
    /// `fine_tier_bytes`; lanes sum to `fine_dram_bytes` on tiered tiles).
    pub fine_tier_dram_bytes: [u64; MAX_TIERS],
}

impl AddAssign for TileWorkload {
    fn add_assign(&mut self, o: TileWorkload) {
        self.rays += o.rays;
        self.dda_steps += o.dda_steps;
        self.voxels_intersected += o.voxels_intersected;
        self.dag_edges += o.dag_edges;
        self.cycle_breaks += o.cycle_breaks;
        self.order_ops += o.order_ops;
        self.voxels_processed += o.voxels_processed;
        self.gaussians_streamed += o.gaussians_streamed;
        self.coarse_survivors += o.coarse_survivors;
        self.fine_survivors += o.fine_survivors;
        self.max_sort_batch = self.max_sort_batch.max(o.max_sort_batch);
        self.blend_lanes += o.blend_lanes;
        self.blend_fragments += o.blend_fragments;
        self.coarse_bytes += o.coarse_bytes;
        self.fine_bytes += o.fine_bytes;
        self.pixel_bytes += o.pixel_bytes;
        self.coarse_dram_bytes += o.coarse_dram_bytes;
        self.fine_dram_bytes += o.fine_dram_bytes;
        self.pixel_dram_bytes += o.pixel_dram_bytes;
        self.coarse_hit_bytes += o.coarse_hit_bytes;
        self.fine_hit_bytes += o.fine_hit_bytes;
        for t in 0..MAX_TIERS {
            self.fine_tier_bytes[t] += o.fine_tier_bytes[t];
            self.fine_tier_dram_bytes[t] += o.fine_tier_dram_bytes[t];
        }
    }
}

impl TileWorkload {
    /// Total demand bytes this tile asked the memory system for (the
    /// byte-exactness invariant; equal to the ledger's demand stages).
    pub fn dram_bytes(&self) -> u64 {
        self.coarse_bytes + self.fine_bytes + self.pixel_bytes
    }

    /// Total DRAM *transaction* bytes this tile moved (burst-rounded,
    /// post-cache). Zero when the workload predates DRAM transaction
    /// accounting.
    pub fn dram_transaction_bytes(&self) -> u64 {
        self.coarse_dram_bytes + self.fine_dram_bytes + self.pixel_dram_bytes
    }

    /// Demand bytes the working-set cache served on-chip.
    pub fn cache_hit_bytes(&self) -> u64 {
        self.coarse_hit_bytes + self.fine_hit_bytes
    }

    /// `true` when this tile carries recorded DRAM transaction / cache-hit
    /// accounting. **The** legacy predicate: [`FrameWorkload::to_ledger`]
    /// and the accelerator's per-tile fetch term both branch on it, so
    /// DRAM-time and energy pricing can never desynchronize.
    pub fn has_transaction_accounting(&self) -> bool {
        self.dram_transaction_bytes() + self.cache_hit_bytes() > 0
    }

    /// `(coarse, fine, pixel)` DRAM transaction bytes **synthesized** for
    /// a tile recorded before transaction accounting (all `*_dram_bytes`
    /// zero): each stage's demand is split over its known transfer count
    /// (coarse: one burst per processed voxel; fine: one record per
    /// coarse survivor; pixels: one writeback per tile) and each transfer
    /// is rounded up to the default burst — exact for uniform record
    /// sizes, the average-record approximation otherwise. Both
    /// [`FrameWorkload::to_ledger`] and the accelerator model's fetch
    /// term use this, so a legacy workload is priced from one consistent
    /// byte count everywhere.
    pub fn synthesized_dram_bytes(&self) -> (u64, u64, u64) {
        use gs_mem::dram::{round_to_burst, DEFAULT_BURST_BYTES};
        let synth = |bytes: u64, transfers: u64| -> u64 {
            if bytes == 0 {
                0
            } else if transfers == 0 {
                round_to_burst(bytes, DEFAULT_BURST_BYTES)
            } else {
                transfers * round_to_burst(bytes.div_ceil(transfers), DEFAULT_BURST_BYTES)
            }
        };
        (
            synth(self.coarse_bytes, self.voxels_processed as u64),
            synth(self.fine_bytes, self.coarse_survivors),
            round_to_burst(self.pixel_bytes, DEFAULT_BURST_BYTES),
        )
    }

    /// Fraction of streamed Gaussians removed by hierarchical filtering
    /// (paper: 76.3 % on average).
    pub fn filter_kill_rate(&self) -> f64 {
        if self.gaussians_streamed == 0 {
            0.0
        } else {
            1.0 - self.fine_survivors as f64 / self.gaussians_streamed as f64
        }
    }
}

/// A whole frame's workload: per-tile records plus frame-level constants.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FrameWorkload {
    /// Per-tile records (row-major tile order).
    pub tiles: Vec<TileWorkload>,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Non-empty voxels in the scene grid.
    pub scene_voxels: u32,
    /// Gaussians in the scene.
    pub scene_gaussians: u64,
}

impl FrameWorkload {
    /// Sum over all tiles.
    pub fn totals(&self) -> TileWorkload {
        let mut t = TileWorkload::default();
        for w in &self.tiles {
            t += *w;
        }
        t
    }

    /// Frame pixels.
    pub fn pixels(&self) -> u64 {
        self.width as u64 * self.height as u64
    }

    /// Total DRAM bytes for the frame.
    pub fn dram_bytes(&self) -> u64 {
        self.totals().dram_bytes()
    }

    /// Rebuilds the frame's per-stage traffic ledger from the byte
    /// counters (coarse/fine reads + pixel writes), including the DRAM
    /// transaction and cache-hit classes.
    ///
    /// For a freshly rendered frame this equals the measured ledger the
    /// renderer returns (the counters are derived from it); use this for
    /// *derived* workloads — extrapolated, synthetic or deserialized —
    /// where no measured ledger exists. Tiles that predate DRAM
    /// transaction accounting (no `*_dram_bytes`/`*_hit_bytes` recorded)
    /// get their transaction bytes **synthesized** per tile via
    /// [`TileWorkload::synthesized_dram_bytes`] — the same numbers the
    /// accelerator's fetch term uses, decided tile by tile, so mixed
    /// measured/legacy frames stay self-consistent.
    pub fn to_ledger(&self) -> TrafficLedger {
        let t = self.totals();
        let mut l = TrafficLedger::new();
        l.add(Stage::VoxelCoarse, Direction::Read, t.coarse_bytes);
        l.add(Stage::VoxelFine, Direction::Read, t.fine_bytes);
        l.add(Stage::PixelOut, Direction::Write, t.pixel_bytes);
        // Recorded-vs-synthesized is decided tile by tile, with the same
        // predicate and synthesis the accelerator's per-tile fetch term
        // uses ([`TileWorkload::synthesized_dram_bytes`]) — so even a
        // frame mixing measured and legacy tiles is priced from one
        // consistent byte count everywhere.
        let (coarse_dram, fine_dram, pixel_dram) = {
            let mut acc = (0u64, 0u64, 0u64);
            for w in &self.tiles {
                let (c, f, p) = if w.has_transaction_accounting() {
                    (w.coarse_dram_bytes, w.fine_dram_bytes, w.pixel_dram_bytes)
                } else {
                    w.synthesized_dram_bytes()
                };
                acc = (acc.0 + c, acc.1 + f, acc.2 + p);
            }
            acc
        };
        l.note_dram(Stage::VoxelCoarse, Direction::Read, coarse_dram);
        l.note_dram(Stage::VoxelFine, Direction::Read, fine_dram);
        l.note_dram(Stage::PixelOut, Direction::Write, pixel_dram);
        l.note_hit(Stage::VoxelCoarse, Direction::Read, t.coarse_hit_bytes);
        l.note_hit(Stage::VoxelFine, Direction::Read, t.fine_hit_bytes);
        // Per-tier fine lanes, decided tile by tile like the DRAM bytes:
        // tiles with recorded lanes replay them; legacy tiles (all lanes
        // zero) attribute their whole fine phase to tier 0 — the column
        // every pre-tier renderer actually read.
        for w in &self.tiles {
            if w.fine_tier_bytes == [0; MAX_TIERS] {
                l.note_tier(0, w.fine_bytes);
            } else {
                for tt in 0..MAX_TIERS {
                    l.note_tier(tt, w.fine_tier_bytes[tt]);
                }
            }
            if w.fine_tier_dram_bytes == [0; MAX_TIERS] {
                let dram = if w.has_transaction_accounting() {
                    w.fine_dram_bytes
                } else {
                    w.synthesized_dram_bytes().1
                };
                l.note_tier_dram(0, dram);
            } else {
                for tt in 0..MAX_TIERS {
                    l.note_tier_dram(tt, w.fine_tier_dram_bytes[tt]);
                }
            }
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate() {
        let mut f = FrameWorkload {
            width: 32,
            height: 16,
            ..Default::default()
        };
        f.tiles.push(TileWorkload {
            gaussians_streamed: 10,
            fine_survivors: 4,
            ..Default::default()
        });
        f.tiles.push(TileWorkload {
            gaussians_streamed: 20,
            fine_survivors: 2,
            ..Default::default()
        });
        let t = f.totals();
        assert_eq!(t.gaussians_streamed, 30);
        assert_eq!(t.fine_survivors, 6);
        assert_eq!(f.pixels(), 512);
        assert!((t.filter_kill_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn kill_rate_zero_when_nothing_streamed() {
        assert_eq!(TileWorkload::default().filter_kill_rate(), 0.0);
    }

    #[test]
    fn dram_bytes_sum_components() {
        let w = TileWorkload {
            coarse_bytes: 100,
            fine_bytes: 50,
            pixel_bytes: 25,
            ..Default::default()
        };
        assert_eq!(w.dram_bytes(), 175);
    }

    #[test]
    fn to_ledger_synthesizes_per_transfer_rounding_for_legacy_workloads() {
        // A workload without DRAM transaction fields (pre-cache, or
        // hand-built in tests) gets per-transfer burst rounding from its
        // transfer counts: 1000 scattered 13 B records = 1000 bursts.
        let mut f = FrameWorkload::default();
        f.tiles.push(TileWorkload {
            voxels_processed: 10,
            coarse_survivors: 1_000,
            coarse_bytes: 10 * 640, // ten 640 B voxel bursts (already aligned)
            fine_bytes: 1_000 * 13,
            pixel_bytes: 4_096,
            ..Default::default()
        });
        let l = f.to_ledger();
        assert_eq!(l.dram(Stage::VoxelCoarse, Direction::Read), 10 * 640);
        assert_eq!(l.dram(Stage::VoxelFine, Direction::Read), 1_000 * 32);
        assert_eq!(l.dram(Stage::PixelOut, Direction::Write), 4_096);
        assert!(l.has_dram_accounting());
        // Recorded fields win over synthesis and round-trip exactly.
        f.tiles[0].coarse_dram_bytes = 7_000;
        f.tiles[0].fine_dram_bytes = 31_968;
        f.tiles[0].pixel_dram_bytes = 4_096;
        f.tiles[0].coarse_hit_bytes = 123;
        let l = f.to_ledger();
        assert_eq!(l.dram_total(), 7_000 + 31_968 + 4_096);
        assert_eq!(l.hit_total(), 123);
    }

    #[test]
    fn to_ledger_mirrors_byte_counters() {
        let mut f = FrameWorkload::default();
        f.tiles.push(TileWorkload {
            coarse_bytes: 160,
            fine_bytes: 440,
            pixel_bytes: 64,
            ..Default::default()
        });
        f.tiles.push(TileWorkload {
            coarse_bytes: 32,
            fine_bytes: 13,
            pixel_bytes: 16,
            ..Default::default()
        });
        let l = f.to_ledger();
        assert_eq!(l.get(Stage::VoxelCoarse, Direction::Read), 192);
        assert_eq!(l.get(Stage::VoxelFine, Direction::Read), 453);
        assert_eq!(l.get(Stage::PixelOut, Direction::Write), 80);
        assert_eq!(l.total(), f.dram_bytes());
    }
}
