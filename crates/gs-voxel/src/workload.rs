//! Workload records the streaming pipeline emits for the accelerator model.
//!
//! The byte counters (`coarse_bytes`, `fine_bytes`, `pixel_bytes`) are
//! *derived* from the frame's [`TrafficLedger`] stages — the renderer
//! meters every store fetch and pixel writeback into per-worker ledgers
//! and reads the per-tile counters back out of them, so ledger totals and
//! workload totals agree exactly by construction. [`FrameWorkload::to_ledger`]
//! converts in the other direction (e.g. after workload extrapolation).

use gs_mem::{Direction, Stage, TrafficLedger};
use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// Everything one tile did — the per-tile input to the timing model.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileWorkload {
    /// Pixel rays sampled by the VSU.
    pub rays: u32,
    /// DDA steps across all rays (VSU ray-sample work).
    pub dda_steps: u64,
    /// Distinct voxels intersected by the tile.
    pub voxels_intersected: u32,
    /// Unique DAG edges among them.
    pub dag_edges: u32,
    /// Cycle-break events during the topological sort.
    pub cycle_breaks: u32,
    /// Topological-ordering work: nodes emitted plus edges relaxed by
    /// Kahn's algorithm (the VSU ordering-stage work measure).
    pub order_ops: u64,
    /// Voxels actually streamed (≤ intersected thanks to early termination).
    pub voxels_processed: u32,
    /// Gaussian records streamed from DRAM (coarse phase).
    pub gaussians_streamed: u64,
    /// Gaussians passing the coarse filter (fine records fetched).
    pub coarse_survivors: u64,
    /// Gaussians passing the fine filter (sorted + rendered).
    pub fine_survivors: u64,
    /// Largest per-voxel survivor count sorted at once.
    pub max_sort_batch: u32,
    /// (splat, pixel) lanes evaluated by the render array.
    pub blend_lanes: u64,
    /// Fragments actually blended (alpha above threshold).
    pub blend_fragments: u64,
    /// DRAM bytes fetched for the coarse phase.
    pub coarse_bytes: u64,
    /// DRAM bytes fetched for the fine phase.
    pub fine_bytes: u64,
    /// DRAM bytes written for final pixels.
    pub pixel_bytes: u64,
}

impl AddAssign for TileWorkload {
    fn add_assign(&mut self, o: TileWorkload) {
        self.rays += o.rays;
        self.dda_steps += o.dda_steps;
        self.voxels_intersected += o.voxels_intersected;
        self.dag_edges += o.dag_edges;
        self.cycle_breaks += o.cycle_breaks;
        self.order_ops += o.order_ops;
        self.voxels_processed += o.voxels_processed;
        self.gaussians_streamed += o.gaussians_streamed;
        self.coarse_survivors += o.coarse_survivors;
        self.fine_survivors += o.fine_survivors;
        self.max_sort_batch = self.max_sort_batch.max(o.max_sort_batch);
        self.blend_lanes += o.blend_lanes;
        self.blend_fragments += o.blend_fragments;
        self.coarse_bytes += o.coarse_bytes;
        self.fine_bytes += o.fine_bytes;
        self.pixel_bytes += o.pixel_bytes;
    }
}

impl TileWorkload {
    /// Total DRAM bytes this tile moved.
    pub fn dram_bytes(&self) -> u64 {
        self.coarse_bytes + self.fine_bytes + self.pixel_bytes
    }

    /// Fraction of streamed Gaussians removed by hierarchical filtering
    /// (paper: 76.3 % on average).
    pub fn filter_kill_rate(&self) -> f64 {
        if self.gaussians_streamed == 0 {
            0.0
        } else {
            1.0 - self.fine_survivors as f64 / self.gaussians_streamed as f64
        }
    }
}

/// A whole frame's workload: per-tile records plus frame-level constants.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FrameWorkload {
    /// Per-tile records (row-major tile order).
    pub tiles: Vec<TileWorkload>,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Non-empty voxels in the scene grid.
    pub scene_voxels: u32,
    /// Gaussians in the scene.
    pub scene_gaussians: u64,
}

impl FrameWorkload {
    /// Sum over all tiles.
    pub fn totals(&self) -> TileWorkload {
        let mut t = TileWorkload::default();
        for w in &self.tiles {
            t += *w;
        }
        t
    }

    /// Frame pixels.
    pub fn pixels(&self) -> u64 {
        self.width as u64 * self.height as u64
    }

    /// Total DRAM bytes for the frame.
    pub fn dram_bytes(&self) -> u64 {
        self.totals().dram_bytes()
    }

    /// Rebuilds the frame's per-stage traffic ledger from the byte
    /// counters (coarse/fine reads + pixel writes).
    ///
    /// For a freshly rendered frame this equals the measured ledger the
    /// renderer returns (the counters are derived from it); use this for
    /// *derived* workloads — extrapolated, synthetic or deserialized —
    /// where no measured ledger exists.
    pub fn to_ledger(&self) -> TrafficLedger {
        let t = self.totals();
        let mut l = TrafficLedger::new();
        l.add(Stage::VoxelCoarse, Direction::Read, t.coarse_bytes);
        l.add(Stage::VoxelFine, Direction::Read, t.fine_bytes);
        l.add(Stage::PixelOut, Direction::Write, t.pixel_bytes);
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate() {
        let mut f = FrameWorkload {
            width: 32,
            height: 16,
            ..Default::default()
        };
        f.tiles.push(TileWorkload {
            gaussians_streamed: 10,
            fine_survivors: 4,
            ..Default::default()
        });
        f.tiles.push(TileWorkload {
            gaussians_streamed: 20,
            fine_survivors: 2,
            ..Default::default()
        });
        let t = f.totals();
        assert_eq!(t.gaussians_streamed, 30);
        assert_eq!(t.fine_survivors, 6);
        assert_eq!(f.pixels(), 512);
        assert!((t.filter_kill_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn kill_rate_zero_when_nothing_streamed() {
        assert_eq!(TileWorkload::default().filter_kill_rate(), 0.0);
    }

    #[test]
    fn dram_bytes_sum_components() {
        let w = TileWorkload {
            coarse_bytes: 100,
            fine_bytes: 50,
            pixel_bytes: 25,
            ..Default::default()
        };
        assert_eq!(w.dram_bytes(), 175);
    }

    #[test]
    fn to_ledger_mirrors_byte_counters() {
        let mut f = FrameWorkload::default();
        f.tiles.push(TileWorkload {
            coarse_bytes: 160,
            fine_bytes: 440,
            pixel_bytes: 64,
            ..Default::default()
        });
        f.tiles.push(TileWorkload {
            coarse_bytes: 32,
            fine_bytes: 13,
            pixel_bytes: 16,
            ..Default::default()
        });
        let l = f.to_ledger();
        assert_eq!(l.get(Stage::VoxelCoarse, Direction::Read), 192);
        assert_eq!(l.get(Stage::VoxelFine, Direction::Read), 453);
        assert_eq!(l.get(Stage::PixelOut, Direction::Write), 80);
        assert_eq!(l.total(), f.dram_bytes());
    }
}
