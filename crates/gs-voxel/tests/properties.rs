//! Property-based tests for the streaming pipeline's data structures.

// Tests may unwrap: a panic is exactly the right failure mode here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gs_core::camera::Camera;
use gs_core::geom::Ray;
use gs_core::vec::Vec3;
use gs_scene::{Gaussian, GaussianCloud};
use gs_voxel::dda::{reference, traverse, traverse_cells};
use gs_voxel::order::{count_order_violations, topological_order};
use gs_voxel::{StreamingConfig, StreamingScene, VoxelGrid};
use proptest::prelude::*;

fn cloud_strategy() -> impl Strategy<Value = GaussianCloud> {
    proptest::collection::vec(
        (-4.0f32..4.0, -2.0f32..2.0, -3.0f32..3.0, 0.01f32..0.2),
        3..60,
    )
    .prop_map(|pts| {
        pts.into_iter()
            .map(|(x, y, z, s)| Gaussian::isotropic(Vec3::new(x, y, z), s, Vec3::ONE, 0.8))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn grid_partition_is_exact(cloud in cloud_strategy(), voxel in 0.3f32..2.0) {
        let grid = VoxelGrid::build(&cloud, voxel);
        // Every Gaussian appears in exactly one voxel's list.
        let mut seen = vec![0u32; cloud.len()];
        for v in 0..grid.voxel_count() as u32 {
            for &gi in grid.gaussians_of(v) {
                seen[gi as usize] += 1;
                prop_assert!(grid.voxel_aabb(v).contains(cloud.as_slice()[gi as usize].pos));
            }
        }
        prop_assert!(seen.iter().all(|c| *c == 1));
    }

    #[test]
    fn dda_visits_are_unique_and_front_to_back(
        cloud in cloud_strategy(),
        voxel in 0.4f32..1.5,
        oy in -1.5f32..1.5,
        dir_y in -0.4f32..0.4,
    ) {
        let grid = VoxelGrid::build(&cloud, voxel);
        let ray = Ray::new(
            Vec3::new(-8.0, oy, 0.2),
            Vec3::new(1.0, dir_y, 0.1).normalized(),
        );
        let r = traverse(&grid, &ray, 1_000);
        // Unique voxels.
        let mut sorted = r.voxels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), r.voxels.len());
        // Entry distances monotone (voxel centres may wiggle within half a
        // diagonal, so check via slab entry parameters).
        let mut last_entry = f32::NEG_INFINITY;
        for &v in &r.voxels {
            let (t0, _) = grid.voxel_aabb(v).intersect_ray(&ray).expect("listed voxel must be hit");
            prop_assert!(t0 >= last_entry - 1e-3, "non-monotone voxel entry");
            last_entry = t0;
        }
    }

    #[test]
    fn incremental_dda_index_matches_recomputation(
        cloud in cloud_strategy(),
        voxel in 0.4f32..1.5,
        oy in -1.5f32..1.5,
        oz in -1.0f32..1.0,
        dir_y in -0.5f32..0.5,
        dir_z in -0.5f32..0.5,
        flip in -1.0f32..1.0,
    ) {
        // The marcher's incrementally maintained linear cell index must
        // equal the recomputed `(z*ny + y)*nx + x` at *every* step (empty
        // cells included), and the whole walk must match the kept
        // pre-overhaul reference twin step for step.
        let grid = VoxelGrid::build(&cloud, voxel);
        let (nx, ny, _) = grid.dims();
        let sign = if flip < 0.0 { -1.0 } else { 1.0 };
        let ray = Ray::new(
            Vec3::new(-8.0 * sign, oy, oz),
            Vec3::new(sign, dir_y, dir_z).normalized(),
        );
        let mut cells = Vec::new();
        let steps = traverse_cells(&grid, &ray, 10_000, &mut cells);
        prop_assert_eq!(steps as usize, cells.len());
        for &((x, y, z), lin) in &cells {
            let expect = (z as usize * ny as usize + y as usize) * nx as usize + x as usize;
            prop_assert_eq!(lin, expect, "index drifted at cell {:?}", (x, y, z));
        }
        prop_assert_eq!(
            traverse(&grid, &ray, 10_000),
            reference::traverse(&grid, &ray, 10_000),
            "marcher diverged from its reference twin"
        );
    }

    #[test]
    fn topological_order_respects_acyclic_ray_lists(
        chain_len in 2usize..20,
        n_rays in 1usize..10,
        seed in 0u64..1000,
    ) {
        // Rays take random subsequences of a common chain: always acyclic.
        let mut lists = Vec::new();
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..n_rays {
            let mut list = Vec::new();
            for v in 0..chain_len as u32 {
                if next() % 3 != 0 {
                    list.push(v);
                }
            }
            if list.len() >= 2 {
                lists.push(list);
            }
        }
        let order = topological_order(&lists, |v| v as f32);
        prop_assert_eq!(order.cycle_breaks, 0);
        prop_assert_eq!(count_order_violations(&lists, &order.order), 0);
    }

    #[test]
    fn dda_ray_bundles_always_order_cleanly(
        cloud in cloud_strategy(),
        voxel in 0.4f32..1.5,
        cx in -1.0f32..1.0,
        cy in -0.8f32..0.8,
        dist in 6.0f32..12.0,
    ) {
        // A pixel-group-style bundle of rays from one camera through a
        // convex (regular) voxel grid: along any straight ray the per-axis
        // cell indices move monotonically, so the visit orders of two rays
        // from a common origin can never contradict each other. The DAG
        // must therefore be acyclic and the topological order violation-
        // free — the property the streaming VSU relies on.
        let grid = VoxelGrid::build(&cloud, voxel);
        let cam = Camera::look_at(
            Vec3::new(cx, cy, -dist),
            Vec3::ZERO,
            Vec3::Y,
            32,
            24,
            0.9,
        );
        let mut lists = Vec::new();
        for py in (0..24u32).step_by(2) {
            for px in (0..32u32).step_by(2) {
                let ray = cam.pixel_ray(px as f32 + 0.5, py as f32 + 0.5);
                let r = traverse(&grid, &ray, 10_000);
                if r.voxels.len() >= 2 {
                    lists.push(r.voxels);
                }
            }
        }
        prop_assume!(!lists.is_empty());
        let order = topological_order(&lists, |v| {
            cam.world_to_camera(grid.voxel_center(v)).z
        });
        prop_assert_eq!(order.cycle_breaks, 0, "convex-grid bundle produced a cycle");
        prop_assert_eq!(count_order_violations(&lists, &order.order), 0);
    }

    #[test]
    fn streaming_render_identical_across_thread_counts(
        cloud in cloud_strategy(),
        voxel in 0.5f32..1.2,
    ) {
        // The parallel front-end / per-chunk scratch must never leak into
        // the output: threads ∈ {1, 2, 0 (= all cores)} render the same
        // bytes and the same workload totals.
        let cam = Camera::look_at(
            Vec3::new(0.4, 0.2, -7.0),
            Vec3::ZERO,
            Vec3::Y,
            64,
            48,
            0.9,
        );
        let base = StreamingConfig {
            voxel_size: voxel,
            group_size: 16,
            ..Default::default()
        };
        let render_with = |threads: usize| {
            StreamingScene::new(cloud.clone(), StreamingConfig { threads, ..base }).render(&cam)
        };
        let one = render_with(1);
        for threads in [2usize, 0] {
            let other = render_with(threads);
            prop_assert_eq!(&one.image, &other.image, "threads={} changed the image", threads);
            prop_assert_eq!(
                one.workload.totals(),
                other.workload.totals(),
                "threads={} changed the workload", threads
            );
            prop_assert_eq!(
                one.violations.violating_blends,
                other.violations.violating_blends
            );
            prop_assert_eq!(&one.violations.flags, &other.violations.flags);
        }
    }

    #[test]
    fn order_always_contains_every_listed_voxel(
        lists in proptest::collection::vec(
            proptest::collection::vec(0u32..30, 1..10), 1..8
        ),
    ) {
        let order = topological_order(&lists, |v| v as f32);
        let mut expected: Vec<u32> = lists.iter().flatten().copied().collect();
        expected.sort_unstable();
        expected.dedup();
        let mut got = order.order.clone();
        got.sort_unstable();
        got.dedup();
        prop_assert_eq!(got, expected);
    }
}
