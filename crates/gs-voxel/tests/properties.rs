//! Property-based tests for the streaming pipeline's data structures.

use gs_core::geom::Ray;
use gs_core::vec::Vec3;
use gs_scene::{Gaussian, GaussianCloud};
use gs_voxel::dda::traverse;
use gs_voxel::order::{count_order_violations, topological_order};
use gs_voxel::VoxelGrid;
use proptest::prelude::*;

fn cloud_strategy() -> impl Strategy<Value = GaussianCloud> {
    proptest::collection::vec(
        (-4.0f32..4.0, -2.0f32..2.0, -3.0f32..3.0, 0.01f32..0.2),
        3..60,
    )
    .prop_map(|pts| {
        pts.into_iter()
            .map(|(x, y, z, s)| Gaussian::isotropic(Vec3::new(x, y, z), s, Vec3::ONE, 0.8))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn grid_partition_is_exact(cloud in cloud_strategy(), voxel in 0.3f32..2.0) {
        let grid = VoxelGrid::build(&cloud, voxel);
        // Every Gaussian appears in exactly one voxel's list.
        let mut seen = vec![0u32; cloud.len()];
        for v in 0..grid.voxel_count() as u32 {
            for &gi in grid.gaussians_of(v) {
                seen[gi as usize] += 1;
                prop_assert!(grid.voxel_aabb(v).contains(cloud.as_slice()[gi as usize].pos));
            }
        }
        prop_assert!(seen.iter().all(|c| *c == 1));
    }

    #[test]
    fn dda_visits_are_unique_and_front_to_back(
        cloud in cloud_strategy(),
        voxel in 0.4f32..1.5,
        oy in -1.5f32..1.5,
        dir_y in -0.4f32..0.4,
    ) {
        let grid = VoxelGrid::build(&cloud, voxel);
        let ray = Ray::new(
            Vec3::new(-8.0, oy, 0.2),
            Vec3::new(1.0, dir_y, 0.1).normalized(),
        );
        let r = traverse(&grid, &ray, 1_000);
        // Unique voxels.
        let mut sorted = r.voxels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), r.voxels.len());
        // Entry distances monotone (voxel centres may wiggle within half a
        // diagonal, so check via slab entry parameters).
        let mut last_entry = f32::NEG_INFINITY;
        for &v in &r.voxels {
            let (t0, _) = grid.voxel_aabb(v).intersect_ray(&ray).expect("listed voxel must be hit");
            prop_assert!(t0 >= last_entry - 1e-3, "non-monotone voxel entry");
            last_entry = t0;
        }
    }

    #[test]
    fn topological_order_respects_acyclic_ray_lists(
        chain_len in 2usize..20,
        n_rays in 1usize..10,
        seed in 0u64..1000,
    ) {
        // Rays take random subsequences of a common chain: always acyclic.
        let mut lists = Vec::new();
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..n_rays {
            let mut list = Vec::new();
            for v in 0..chain_len as u32 {
                if next() % 3 != 0 {
                    list.push(v);
                }
            }
            if list.len() >= 2 {
                lists.push(list);
            }
        }
        let order = topological_order(&lists, |v| v as f32);
        prop_assert_eq!(order.cycle_breaks, 0);
        prop_assert_eq!(count_order_violations(&lists, &order.order), 0);
    }

    #[test]
    fn order_always_contains_every_listed_voxel(
        lists in proptest::collection::vec(
            proptest::collection::vec(0u32..30, 1..10), 1..8
        ),
    ) {
        let order = topological_order(&lists, |v| v as f32);
        let mut expected: Vec<u32> = lists.iter().flatten().copied().collect();
        expected.sort_unstable();
        expected.dedup();
        let mut got = order.order.clone();
        got.sort_unstable();
        got.dedup();
        prop_assert_eq!(got, expected);
    }
}
