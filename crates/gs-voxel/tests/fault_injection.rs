//! Fault-injection contracts of the paged streaming renderer (PR 6):
//!
//! (a) **Transient faults are invisible** — with a seeded [`FaultPolicy`]
//!     injecting ≥1 % transient page faults on a paged+VQ trajectory,
//!     `try_render` output is bit-identical to the fault-free frame for
//!     any worker count, and the [`DegradationReport`] counts the retries
//!     exactly (`page_retries == injected.total()` when no fault is
//!     permanent).
//! (b) **Permanent faults degrade deterministically** — rendering
//!     completes without panicking, frames are bit-reproducible and the
//!     `DegradationReport`s identical across {1, 2, 0} threads.
//! (c) **Paged ≡ resident with checksums on** — CRC verification never
//!     changes a byte of output.
//! (d) **Fail-fast mode** — with `degrade_on_fault` off, permanent faults
//!     surface the globally-first failing group's error for any worker
//!     count.
//! (e) **Version-1 images** — still render identically, with checksum
//!     verification flagged off in the effective `PageConfig`.
//! (f) **File-backed faults** — the same transient-recovery contract
//!     holds when the faulty pages are read from an on-disk scene image
//!     (`page_out_file_with_faults` / `open_paged_file_with_faults`).
//! (g) **Dead-page map** — `dead_page_map` starts all-healthy, marks
//!     pages lost to permanent faults, and agrees with the aggregate
//!     `fault_snapshot().dead_pages` count.
//! (h) **Tier columns are fault domains** — a paged v3 store's extra LOD
//!     tier columns recover from transient faults bit-identically and
//!     dead-mark per (tier, page), agreeing with the snapshot.
//! (i) **Replica reads heal dead pages** (ISSUE 10) — with a
//!     byte-compatible replica attached, pages lost to permanent faults
//!     re-fetch from the replica instead of degrading: frames come back
//!     bit-identical to fault-free rendering for any worker count, heals
//!     are counted in the [`DegradationReport`], healed pages re-verify
//!     their CRC chunks (a corrupt replica is rejected page-by-page),
//!     and attach validates byte-compatibility up front.

// Tests may unwrap: a panic is exactly the right failure mode here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gs_scene::{SceneConfig, SceneKind};
use gs_voxel::{
    DegradationReport, FaultPolicy, PageConfig, StreamingConfig, StreamingOutput, StreamingScene,
};
use gs_vq::VqConfig;

fn vq_config(voxel_size: f32, threads: usize) -> StreamingConfig {
    StreamingConfig {
        voxel_size,
        use_vq: true,
        vq: VqConfig::tiny(),
        threads,
        ..Default::default()
    }
}

/// Small pages so a tiny scene still spans many page reads (= many fault
/// draws), generous retry budget so transient runs cannot exhaust it.
fn page_config() -> PageConfig {
    PageConfig {
        slots_per_page: 16,
        max_read_attempts: 8,
        ..PageConfig::default()
    }
}

fn outputs_identical(a: &StreamingOutput, b: &StreamingOutput, what: &str) {
    assert_eq!(a.image, b.image, "image diverged: {what}");
    assert_eq!(a.workload, b.workload, "workload diverged: {what}");
    assert_eq!(a.ledger, b.ledger, "ledger diverged: {what}");
    assert_eq!(a.violations, b.violations, "violations diverged: {what}");
    assert_eq!(a.cache, b.cache, "cache report diverged: {what}");
}

#[test]
fn transient_faults_render_bit_identically_and_count_retries() {
    let scene = SceneKind::Lego.build(&SceneConfig::tiny());
    let cams = &scene.eval_cameras[..2.min(scene.eval_cameras.len())];
    // 2 % transient faults — past the ≥1 % acceptance bar.
    let policy = FaultPolicy::transient(0xFA17_5EED, 20);

    let clean = StreamingScene::new(scene.trained.clone(), vq_config(scene.voxel_size, 1));
    let mut clean = clean;
    clean.page_out(page_config());
    let clean_frames: Vec<StreamingOutput> = cams
        .iter()
        .map(|c| clean.try_render(c).expect("fault-free render"))
        .collect();
    for f in &clean_frames {
        assert!(f.degradation.is_clean(), "fault-free paged frame degraded");
    }

    let mut reference: Option<Vec<StreamingOutput>> = None;
    for threads in [1usize, 2, 0] {
        let mut faulty =
            StreamingScene::new(scene.trained.clone(), vq_config(scene.voxel_size, threads));
        faulty
            .page_out_with_faults(page_config(), policy)
            .expect("serialize + reopen with faults");
        let frames: Vec<StreamingOutput> = cams
            .iter()
            .map(|c| faulty.try_render(c).expect("transient faults must recover"))
            .collect();
        let mut injected_total = 0;
        for (i, (f, c)) in frames.iter().zip(&clean_frames).enumerate() {
            // Recovery is invisible in every output byte…
            outputs_identical(f, c, &format!("threads={threads} frame={i}"));
            // …and accounted exactly: every injected fault (all transient
            // here) caused exactly one retry, no page was lost, nothing
            // was degraded.
            let d = f.degradation;
            assert_eq!(d.injected.permanent, 0, "transient-only policy");
            assert_eq!(
                d.page_retries,
                d.injected.total(),
                "retries must count injected faults exactly (frame {i})"
            );
            assert_eq!(d.pages_lost, 0);
            assert_eq!(d.voxels_skipped + d.fine_degraded + d.fine_skipped, 0);
            injected_total += d.injected.total();
        }
        assert!(
            injected_total > 0,
            "the policy never fired — the test is vacuous"
        );
        // The injected fault sequence itself is thread-invariant.
        match &reference {
            None => reference = Some(frames),
            Some(r) => {
                for (i, (a, b)) in r.iter().zip(&frames).enumerate() {
                    assert_eq!(
                        a.degradation, b.degradation,
                        "degradation diverged at threads={threads} frame={i}"
                    );
                }
            }
        }
    }
}

#[test]
fn permanent_faults_degrade_without_panicking_and_deterministically() {
    let scene = SceneKind::Truck.build(&SceneConfig::tiny());
    let cams = &scene.eval_cameras[..2.min(scene.eval_cameras.len())];
    let policy = FaultPolicy {
        seed: 0xDEAD_BEEF,
        permanent_per_mille: 150,
        ..FaultPolicy::default()
    };

    let mut reference: Option<Vec<(gs_core::image::ImageRgb, DegradationReport)>> = None;
    for threads in [1usize, 2, 0] {
        let mut faulty =
            StreamingScene::new(scene.trained.clone(), vq_config(scene.voxel_size, threads));
        faulty
            .page_out_with_faults(page_config(), policy)
            .expect("reopen with faults");
        let frames: Vec<(gs_core::image::ImageRgb, DegradationReport)> = cams
            .iter()
            .map(|c| {
                let out = faulty
                    .try_render(c)
                    .expect("degradation must absorb permanent faults");
                (out.image, out.degradation)
            })
            .collect();
        let lost: u64 = frames.iter().map(|(_, d)| d.pages_lost).sum();
        let degraded: u64 = frames
            .iter()
            .map(|(_, d)| d.voxels_skipped + d.fine_degraded + d.fine_skipped)
            .sum();
        assert!(lost > 0, "no page went dead — the test is vacuous");
        assert!(degraded > 0, "dead pages must surface as degraded voxels");
        match &reference {
            None => reference = Some(frames),
            Some(r) => assert_eq!(
                r, &frames,
                "permanent-fault frames must be deterministic (threads={threads})"
            ),
        }
    }
}

#[test]
fn checksummed_paged_rendering_matches_resident() {
    let scene = SceneKind::Palace.build(&SceneConfig::tiny());
    let cam = &scene.eval_cameras[0];
    let resident = StreamingScene::new(scene.trained.clone(), vq_config(scene.voxel_size, 2));
    let mut paged = resident.clone();
    paged.page_out(page_config());
    assert!(
        paged
            .store()
            .page_config()
            .expect("paged store")
            .verify_checksums,
        "v2 images must verify by default"
    );
    outputs_identical(&resident.render(cam), &paged.render(cam), "verified paged");
}

#[test]
fn fail_fast_mode_surfaces_the_same_error_for_any_worker_count() {
    let scene = SceneKind::Lego.build(&SceneConfig::tiny());
    let cam = &scene.eval_cameras[0];
    let policy = FaultPolicy {
        seed: 0xBAD_F00D,
        permanent_per_mille: 400,
        ..FaultPolicy::default()
    };
    let cfg = StreamingConfig {
        degrade_on_fault: false,
        ..vq_config(scene.voxel_size, 1)
    };
    let mut reference: Option<String> = None;
    for threads in [1usize, 2, 0] {
        let mut faulty =
            StreamingScene::new(scene.trained.clone(), StreamingConfig { threads, ..cfg });
        faulty
            .page_out_with_faults(page_config(), policy)
            .expect("reopen with faults");
        let err = match faulty.try_render(cam) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("fail-fast mode must surface the fault"),
        };
        match &reference {
            None => reference = Some(err),
            Some(r) => assert_eq!(r, &err, "error diverged at threads={threads}"),
        }
    }
}

#[test]
fn file_backed_transient_faults_recover_bit_identically() {
    let scene = SceneKind::Lego.build(&SceneConfig::tiny());
    let cam = &scene.eval_cameras[0];
    let path = std::env::temp_dir().join(format!("gs_fault_file_{}.scene", std::process::id()));

    // Fault-free file-backed reference (exercises `open_paged_file`).
    let mut clean = StreamingScene::new(scene.trained.clone(), vq_config(scene.voxel_size, 1));
    clean
        .page_out_file(&path, page_config())
        .expect("serialize + reopen from file");
    let clean_frame = clean
        .try_render(cam)
        .expect("fault-free file-backed render");
    assert!(
        clean_frame.degradation.is_clean(),
        "fault-free file-backed frame degraded"
    );

    // Same image, same file, transient faults on the positional reads.
    let policy = FaultPolicy::transient(0xFA17_5EED, 20);
    let mut faulty = StreamingScene::new(scene.trained.clone(), vq_config(scene.voxel_size, 1));
    faulty
        .page_out_file_with_faults(&path, page_config(), policy)
        .expect("serialize + reopen from file with faults");
    let frame = faulty
        .try_render(cam)
        .expect("transient faults must recover");
    outputs_identical(&frame, &clean_frame, "file-backed transient faults");
    let d = frame.degradation;
    assert!(
        d.injected.total() > 0,
        "the policy never fired — the test is vacuous"
    );
    assert_eq!(
        d.page_retries,
        d.injected.total(),
        "retries must count injected faults exactly"
    );
    assert_eq!(d.pages_lost, 0, "transient-only policy");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn dead_page_map_exposes_permanent_faults() {
    use gs_voxel::ColumnKind;
    let scene = SceneKind::Truck.build(&SceneConfig::tiny());
    let cam = &scene.eval_cameras[0];

    // Resident backings have no pages at all.
    let resident = StreamingScene::new(scene.trained.clone(), vq_config(scene.voxel_size, 1));
    assert!(resident.dead_page_map(ColumnKind::Coarse).is_empty());
    assert!(resident.dead_page_map(ColumnKind::Fine).is_empty());

    let mut faulty = resident.clone();
    faulty
        .page_out_with_faults(
            page_config(),
            FaultPolicy {
                seed: 0xDEAD_BEEF,
                permanent_per_mille: 150,
                ..FaultPolicy::default()
            },
        )
        .expect("reopen with faults");
    // Faults fire on page reads, never at open: everything starts healthy.
    let coarse0 = faulty.dead_page_map(ColumnKind::Coarse);
    let fine0 = faulty.dead_page_map(ColumnKind::Fine);
    assert!(
        !coarse0.is_empty() || !fine0.is_empty(),
        "paged columns must expose page tables"
    );
    assert!(
        coarse0.iter().chain(&fine0).all(|&dead| !dead),
        "pages must start healthy"
    );

    let out = faulty
        .try_render(cam)
        .expect("degradation must absorb permanent faults");
    assert!(
        out.degradation.pages_lost > 0,
        "no page went dead — the test is vacuous"
    );
    let dead: u64 = [ColumnKind::Coarse, ColumnKind::Fine]
        .iter()
        .map(|&c| faulty.dead_page_map(c).iter().filter(|&&dead| dead).count() as u64)
        .sum();
    assert!(dead > 0, "permanent faults must surface in the map");
    assert_eq!(
        dead,
        faulty.store().fault_snapshot().dead_pages,
        "map must agree with the aggregate snapshot"
    );
}

#[test]
fn v1_images_render_identically_with_verification_flagged_off() {
    let scene = SceneKind::Lego.build(&SceneConfig::tiny());
    let cam = &scene.eval_cameras[0];
    let resident = StreamingScene::new(scene.trained.clone(), vq_config(scene.voxel_size, 1));
    let mut v1 = resident.clone();
    v1.page_out_v1(page_config());
    let effective = v1.store().page_config().expect("paged store");
    assert!(
        !effective.verify_checksums,
        "a v1 image has no checksums to verify"
    );
    outputs_identical(&resident.render(cam), &v1.render(cam), "v1 paged");
}

/// (h) Tier columns are first-class fault domains: a paged tiered (v3)
/// store exposes a per-tier page table, transient faults on the render's
/// tier reads recover bit-identically, and permanent faults dead-mark
/// per (tier, page) in agreement with the aggregate snapshot.
#[test]
fn tier_columns_recover_and_dead_mark_like_the_fine_column() {
    use gs_voxel::{ColumnKind, QualityPolicy, StreamingConfig};
    let scene = SceneKind::Truck.build(&SceneConfig::tiny());
    let cam = &scene.eval_cameras[0];
    // Force the coarsest tier so every fine fetch goes through a tier
    // column — the fault draws land where this test looks.
    let cfg = StreamingConfig {
        tiers: StreamingConfig::default_tier_ladder(),
        quality: QualityPolicy::ForcedTier { tier: 3 },
        ..vq_config(scene.voxel_size, 1)
    };
    let resident = StreamingScene::new(scene.trained.clone(), cfg);
    let n_tiers = resident.store().tier_count();
    assert!(n_tiers >= 2, "ladder must build multiple tiers");
    let clean = resident.render(cam);
    assert!(
        clean.tiers.fetched_bytes[3] > 0,
        "forced tier 3 must fetch tier records"
    );

    // Transient faults: bit-identical recovery, retries counted.
    let mut transient = resident.clone();
    transient
        .page_out_with_faults(page_config(), FaultPolicy::transient(0x7151_0001, 200))
        .expect("reopen with faults");
    let out = transient.try_render(cam).expect("transient faults retry");
    outputs_identical(&clean, &out, "tiered + transient faults");
    assert!(out.degradation.page_retries > 0, "no fault fired — vacuous");

    // Permanent faults: pages die per (tier, page), others stay healthy,
    // and the per-column maps agree with the aggregate count.
    let mut perma = resident.clone();
    perma
        .page_out_with_faults(
            page_config(),
            FaultPolicy {
                seed: 0x7151_0002,
                permanent_per_mille: 150,
                ..FaultPolicy::default()
            },
        )
        .expect("reopen with faults");
    for t in 0..n_tiers {
        let map = perma.dead_page_map(ColumnKind::Tier(t as u8));
        assert!(!map.is_empty(), "paged tier {t} must expose a page table");
        assert!(map.iter().all(|&dead| !dead), "pages must start healthy");
    }
    let out = perma
        .try_render(cam)
        .expect("degradation must absorb permanent faults");
    assert!(out.degradation.pages_lost > 0, "no page died — vacuous");
    let dead: u64 = (0..n_tiers)
        .map(|t| ColumnKind::Tier(t as u8))
        .chain([ColumnKind::Coarse, ColumnKind::Fine])
        .map(|c| perma.dead_page_map(c).iter().filter(|&&d| d).count() as u64)
        .sum();
    assert_eq!(
        dead,
        perma.store().fault_snapshot().dead_pages,
        "per-column maps must agree with the aggregate snapshot"
    );
}

/// A permanent-fault policy hot enough that a trajectory loses pages.
fn permanent_policy() -> FaultPolicy {
    FaultPolicy {
        seed: 0xDEAD_BEEF,
        permanent_per_mille: 150,
        ..FaultPolicy::default()
    }
}

#[test]
fn replica_heals_permanently_faulted_pages_bit_identically() {
    let scene = SceneKind::Lego.build(&SceneConfig::tiny());
    let cams = &scene.eval_cameras[..2.min(scene.eval_cameras.len())];
    let resident = StreamingScene::new(scene.trained.clone(), vq_config(scene.voxel_size, 1));
    // The replica is the same serialized image the paged store reads —
    // serialization is deterministic, so these bytes are what
    // `page_out_with_faults` pages from (minus the injected faults).
    let replica_image = resident.store().to_scene_bytes();

    let mut clean = resident.clone();
    clean.page_out(page_config());
    let clean_frames: Vec<StreamingOutput> = cams.iter().map(|c| clean.render(c)).collect();

    let mut reference: Option<Vec<StreamingOutput>> = None;
    for threads in [1usize, 2, 0] {
        let mut faulty =
            StreamingScene::new(scene.trained.clone(), vq_config(scene.voxel_size, threads));
        faulty
            .page_out_with_faults(page_config(), permanent_policy())
            .expect("reopen with permanent faults");
        faulty
            .attach_replica_bytes(replica_image.clone())
            .expect("byte-compatible replica must attach");
        let frames: Vec<StreamingOutput> = cams
            .iter()
            .map(|c| faulty.try_render(c).expect("replica must absorb faults"))
            .collect();
        let mut healed_total = 0;
        for (i, (f, c)) in frames.iter().zip(&clean_frames).enumerate() {
            // Healing is invisible in every output byte…
            outputs_identical(f, c, &format!("healed threads={threads} frame={i}"));
            // …and the frame degrades nothing: pages heal instead of dying.
            let d = f.degradation;
            assert_eq!(d.pages_lost, 0, "healed pages must not count as lost");
            assert_eq!(d.voxels_skipped + d.fine_degraded + d.fine_skipped, 0);
            healed_total += d.pages_healed;
        }
        assert!(
            healed_total > 0,
            "the policy never killed a page — the test is vacuous"
        );
        let snap = faulty.store().fault_snapshot();
        assert_eq!(snap.dead_pages, 0, "every dead page must have healed");
        assert_eq!(snap.pages_healed, healed_total);
        // The heal sequence itself is thread-invariant.
        match &reference {
            None => reference = Some(frames),
            Some(r) => {
                for (i, (a, b)) in r.iter().zip(&frames).enumerate() {
                    outputs_identical(a, b, &format!("threads={threads} frame={i}"));
                    assert_eq!(a.degradation, b.degradation);
                }
            }
        }
    }
}

#[test]
fn replica_file_heals_like_the_in_memory_replica() {
    let scene = SceneKind::Lego.build(&SceneConfig::tiny());
    let cam = &scene.eval_cameras[0];
    let path = std::env::temp_dir().join(format!("gs_replica_{}.scene", std::process::id()));
    let resident = StreamingScene::new(scene.trained.clone(), vq_config(scene.voxel_size, 1));
    std::fs::write(&path, resident.store().to_scene_bytes()).expect("write replica image");

    let mut clean = resident.clone();
    clean.page_out(page_config());
    let clean_frame = clean.render(cam);

    let mut faulty = resident.clone();
    faulty
        .page_out_with_faults(page_config(), permanent_policy())
        .expect("reopen with permanent faults");
    faulty
        .attach_replica_file(&path)
        .expect("on-disk replica must attach");
    let frame = faulty.try_render(cam).expect("replica must absorb faults");
    outputs_identical(&frame, &clean_frame, "file-backed replica heal");
    assert!(frame.degradation.pages_healed > 0, "no heal happened");
    assert_eq!(frame.degradation.pages_lost, 0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupt_replica_chunks_fail_reverification_and_pages_stay_dead() {
    let scene = SceneKind::Lego.build(&SceneConfig::tiny());
    let cam = &scene.eval_cameras[0];
    let resident = StreamingScene::new(scene.trained.clone(), vq_config(scene.voxel_size, 1));
    let image = resident.store().to_scene_bytes();
    // Corrupt the column payload (the image's back quarter — far past the
    // metadata prefix) densely enough that every page there fails its CRC
    // re-verification at heal time. The metadata prefix stays intact, so
    // the attach-time compatibility check cannot catch this — only the
    // per-chunk checksums can.
    let mut corrupt = image.clone();
    let start = corrupt.len() * 3 / 4;
    for i in (start..corrupt.len()).step_by(16) {
        corrupt[i] ^= 0xFF;
    }

    let mut reference: Option<(StreamingOutput, u64, u64)> = None;
    for threads in [1usize, 2, 0] {
        let mut faulty =
            StreamingScene::new(scene.trained.clone(), vq_config(scene.voxel_size, threads));
        faulty
            .page_out_with_faults(page_config(), permanent_policy())
            .expect("reopen with permanent faults");
        faulty
            .attach_replica_bytes(corrupt.clone())
            .expect("intact metadata prefix must attach");
        let out = faulty
            .try_render(cam)
            .expect("degradation must absorb heal failures");
        let snap = faulty.store().fault_snapshot();
        assert!(
            snap.dead_pages > 0,
            "a corrupt replica must not resurrect pages it cannot verify"
        );
        assert!(
            out.degradation.pages_lost > 0 || out.degradation.pages_healed > 0,
            "the policy never killed a page — the test is vacuous"
        );
        // Heal failures degrade exactly like replica-less losses:
        // deterministically, for any worker count.
        match &reference {
            None => reference = Some((out, snap.dead_pages, snap.pages_healed)),
            Some((r, dead, healed)) => {
                outputs_identical(r, &out, &format!("corrupt replica threads={threads}"));
                assert_eq!(r.degradation, out.degradation);
                assert_eq!((*dead, *healed), (snap.dead_pages, snap.pages_healed));
            }
        }
    }
}

#[test]
fn replica_attach_validates_byte_compatibility_up_front() {
    let scene = SceneKind::Lego.build(&SceneConfig::tiny());
    let resident = StreamingScene::new(scene.trained.clone(), vq_config(scene.voxel_size, 1));
    let image = resident.store().to_scene_bytes();

    // Resident stores have no pages to heal.
    assert!(resident.attach_replica_bytes(image.clone()).is_err());

    let mut paged = resident.clone();
    paged.page_out(page_config());
    // Wrong length.
    assert!(paged
        .attach_replica_bytes(image[..image.len() - 1].to_vec())
        .is_err());
    // Diverging metadata prefix (a flipped byte in the header tables).
    let mut bad_meta = image.clone();
    bad_meta[30] ^= 0xFF;
    assert!(paged.attach_replica_bytes(bad_meta).is_err());
    // The real image attaches fine after all those rejections.
    paged
        .attach_replica_bytes(image)
        .expect("byte-compatible replica must attach");
}
