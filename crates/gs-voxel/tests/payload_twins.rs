//! Whole-frame exactness of the overhauled payload kernels.
//!
//! The incremental DDA marcher ([`gs_voxel::dda`]) and the lane-wise EWA
//! blender (`GroupBlender::blend`) must be *byte-identical* to their kept
//! reference twins — not approximately, not per-pixel-close: the same
//! image bits, workload counters, traffic ledger and violation flags.
//! `StreamingScene::render_payload_twin` renders through the identical
//! store fetch path with only the two kernels swapped for the twins, so
//! any divergence below is a payload-kernel bug by construction.
//!
//! Covered here: all six scene kinds, raw and VQ, resident and
//! demand-paged stores, across worker counts {1, 2, 0 (= all cores)}.
//! The `payload` bench asserts the same equivalence at kernel granularity
//! (voxel lists, step counts, full blender state) and gates the speedup.

// Tests may unwrap: a panic is exactly the right failure mode here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gs_scene::{SceneConfig, SceneKind};
use gs_voxel::{PageConfig, StreamingConfig, StreamingOutput, StreamingScene};
use gs_vq::VqConfig;

fn assert_identical(a: &StreamingOutput, b: &StreamingOutput, ctx: &str) {
    assert_eq!(a.image, b.image, "image diverged: {ctx}");
    assert_eq!(a.workload, b.workload, "workload diverged: {ctx}");
    assert_eq!(a.ledger, b.ledger, "ledger diverged: {ctx}");
    assert_eq!(
        a.violations.violating_blends, b.violations.violating_blends,
        "violating blends diverged: {ctx}"
    );
    assert_eq!(
        a.violations.flags, b.violations.flags,
        "violation flags diverged: {ctx}"
    );
    assert_eq!(a.cache, b.cache, "cache stats diverged: {ctx}");
}

#[test]
fn lane_blend_is_byte_identical_to_scalar_on_all_scene_kinds() {
    for kind in SceneKind::ALL {
        let scene = kind.build(&SceneConfig::tiny());
        let cam = &scene.eval_cameras[0];
        for use_vq in [false, true] {
            for threads in [1usize, 2, 0] {
                let cfg = StreamingConfig {
                    voxel_size: scene.voxel_size,
                    use_vq,
                    vq: VqConfig::tiny(),
                    threads,
                    ..Default::default()
                };
                let st = StreamingScene::new(scene.trained.clone(), cfg);
                assert_identical(
                    &st.render(cam),
                    &st.render_payload_twin(cam),
                    &format!("{} vq={use_vq} threads={threads}", kind.name()),
                );
            }
        }
    }
}

#[test]
fn payload_twin_exactness_holds_on_paged_stores() {
    for kind in SceneKind::ALL {
        let scene = kind.build(&SceneConfig::tiny());
        let cam = &scene.eval_cameras[0];
        let mut st = StreamingScene::new(
            scene.trained.clone(),
            StreamingConfig {
                voxel_size: scene.voxel_size,
                ..Default::default()
            },
        );
        st.page_out(PageConfig::default());
        assert_identical(
            &st.render(cam),
            &st.render_payload_twin(cam),
            &format!("{} paged", kind.name()),
        );
    }
}
