//! The store-backed data path's contracts:
//!
//! 1. **Byte-identical rendering** — the production path (coarse/fine
//!    phases reading only the [`gs_voxel::VoxelStore`] columns) produces
//!    bit-for-bit the same image, workload and ledger as the cloud-backed
//!    reference twin, on every scene kind, with and without VQ.
//! 2. **Ledger/workload consistency** — the frame's merged
//!    [`gs_mem::TrafficLedger`] stages agree exactly with the
//!    `TileWorkload` byte counters (the counters are *derived* from the
//!    ledger; this pins the contract).
//! 3. **Bit-exact store decode** — property tests that the second-half
//!    decode round-trips the raw parameters and the VQ quantizer exactly.

use gs_mem::{Direction, Stage, TrafficLedger};
use gs_scene::{Gaussian, GaussianCloud, SceneConfig, SceneKind};
use gs_voxel::{StreamingConfig, StreamingScene, VoxelGrid, VoxelStore};
use gs_vq::{GaussianQuantizer, VqConfig};
use proptest::prelude::*;

fn raw_config(voxel_size: f32) -> StreamingConfig {
    StreamingConfig {
        voxel_size,
        ..Default::default()
    }
}

fn vq_config(voxel_size: f32) -> StreamingConfig {
    StreamingConfig {
        voxel_size,
        use_vq: true,
        vq: VqConfig::tiny(),
        ..Default::default()
    }
}

#[test]
fn store_path_is_byte_identical_to_cloud_twin_on_all_scene_kinds() {
    for kind in SceneKind::ALL {
        let scene = kind.build(&SceneConfig::tiny());
        let cam = &scene.eval_cameras[0];
        for cfg in [raw_config(scene.voxel_size), vq_config(scene.voxel_size)] {
            let vq = cfg.use_vq;
            let prepared = StreamingScene::new(scene.trained.clone(), cfg);
            let store = prepared.render(cam);
            let twin = prepared.render_cloud_twin(cam);
            assert_eq!(
                store.image,
                twin.image,
                "store-backed image diverged on {} (vq={vq})",
                kind.name()
            );
            assert_eq!(
                store.workload,
                twin.workload,
                "workload diverged on {} (vq={vq})",
                kind.name()
            );
            assert_eq!(
                store.ledger,
                twin.ledger,
                "ledger diverged on {} (vq={vq})",
                kind.name()
            );
            assert_eq!(store.violations.flags, twin.violations.flags);
            assert_eq!(
                store.violations.violating_blends,
                twin.violations.violating_blends
            );
        }
    }
}

#[test]
fn ledger_stages_match_workload_counters_on_every_scene_kind() {
    for kind in SceneKind::ALL {
        let scene = kind.build(&SceneConfig::tiny());
        let cam = &scene.eval_cameras[0];
        let out =
            StreamingScene::new(scene.trained.clone(), raw_config(scene.voxel_size)).render(cam);
        let t = out.workload.totals();
        assert_eq!(
            out.ledger.get(Stage::VoxelCoarse, Direction::Read),
            t.coarse_bytes,
            "coarse bytes diverged on {}",
            kind.name()
        );
        assert_eq!(
            out.ledger.get(Stage::VoxelFine, Direction::Read),
            t.fine_bytes,
            "fine bytes diverged on {}",
            kind.name()
        );
        assert_eq!(
            out.ledger.get(Stage::PixelOut, Direction::Write),
            t.pixel_bytes,
            "pixel bytes diverged on {}",
            kind.name()
        );
        assert_eq!(out.ledger.total(), out.workload.dram_bytes());
        // Rebuilding the ledger from the workload is exact in the other
        // direction too.
        assert_eq!(out.workload.to_ledger(), out.ledger);
    }
}

#[test]
fn ledger_is_deterministic_across_thread_counts() {
    let scene = SceneKind::Truck.build(&SceneConfig::tiny());
    let cam = &scene.eval_cameras[0];
    let render_with = |threads: usize| {
        let cfg = StreamingConfig {
            threads,
            ..raw_config(scene.voxel_size)
        };
        StreamingScene::new(scene.trained.clone(), cfg).render(cam)
    };
    let one = render_with(1);
    for threads in [2usize, 4, 0] {
        let other = render_with(threads);
        assert_eq!(one.ledger, other.ledger, "threads={threads}");
        assert_eq!(one.image, other.image, "threads={threads}");
    }
}

#[test]
fn vq_second_half_traffic_reduction_meets_paper_bar() {
    // With VQ the fine stage's per-record width shrinks from 220 B to the
    // codebooks' record width; coarse survivors are identical (the first
    // half is raw either way), so the ledger's fine-stage reduction is
    // exactly the record-width ratio — ≥ 90 % (paper: 92.3 %).
    let scene = SceneKind::Lego.build(&SceneConfig::tiny());
    let cam = &scene.eval_cameras[0];
    let raw = StreamingScene::new(scene.trained.clone(), raw_config(scene.voxel_size)).render(cam);
    let vq = StreamingScene::new(scene.trained.clone(), vq_config(scene.voxel_size)).render(cam);
    let raw_fine = raw.ledger.get(Stage::VoxelFine, Direction::Read);
    let vq_fine = vq.ledger.get(Stage::VoxelFine, Direction::Read);
    assert!(raw_fine > 0);
    let reduction = 1.0 - vq_fine as f64 / raw_fine as f64;
    assert!(
        reduction >= 0.9,
        "VQ second-half reduction only {reduction:.3}"
    );
    // Coarse traffic is unchanged by VQ.
    assert_eq!(
        raw.ledger.get(Stage::VoxelCoarse, Direction::Read),
        vq.ledger.get(Stage::VoxelCoarse, Direction::Read)
    );
}

fn cloud_strategy() -> impl Strategy<Value = GaussianCloud> {
    proptest::collection::vec(
        (
            -4.0f32..4.0,
            -2.0f32..2.0,
            -3.0f32..3.0,
            0.01f32..0.4,
            0.05f32..0.95,
        ),
        3..50,
    )
    .prop_map(|pts| {
        pts.into_iter()
            .enumerate()
            .map(|(i, (x, y, z, s, o))| {
                let mut g = Gaussian::isotropic(
                    gs_core::vec::Vec3::new(x, y, z),
                    s,
                    gs_core::vec::Vec3::new(0.2, 0.6, 0.8),
                    o,
                );
                // Anisotropic scales so the max-axis tag is exercised.
                g.scale[i % 3] *= 1.5;
                g.sh[5 + i % 40] = 0.31 * (i as f32);
                g
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn raw_store_decode_roundtrips_the_cloud_bit_exactly(
        cloud in cloud_strategy(),
        voxel in 0.3f32..2.0,
    ) {
        let grid = VoxelGrid::build(&cloud, voxel);
        let store = VoxelStore::from_cloud(&cloud, &grid);
        let mut ledger = TrafficLedger::new();
        for slot in 0..store.len() as u32 {
            let g = &cloud.as_slice()[store.id_of(slot) as usize];
            prop_assert_eq!(&store.fetch_fine(slot, &mut ledger), g);
        }
        prop_assert_eq!(
            ledger.get(Stage::VoxelFine, Direction::Read),
            store.len() as u64 * 220
        );
    }

    #[test]
    fn vq_store_decode_roundtrips_the_quantizer_bit_exactly(
        cloud in cloud_strategy(),
        voxel in 0.3f32..2.0,
    ) {
        let quant = GaussianQuantizer::train(&cloud, &VqConfig::tiny());
        let grid = VoxelGrid::build(&cloud, voxel);
        let store = VoxelStore::from_quantized(&quant, &grid);
        let mut ledger = TrafficLedger::new();
        for slot in 0..store.len() as u32 {
            let gi = store.id_of(slot) as usize;
            // The store's fetch-decode (bytes → record → codebooks) must be
            // exactly the quantizer's own decode.
            prop_assert_eq!(store.fetch_fine(slot, &mut ledger), quant.decode_one(gi));
        }
        prop_assert_eq!(
            ledger.get(Stage::VoxelFine, Direction::Read),
            store.len() as u64 * quant.fine_bytes_per_gaussian()
        );
    }
}
