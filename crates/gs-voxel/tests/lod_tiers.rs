//! The tiered-rendering contracts of ISSUE 9:
//!
//! 1. **FullQuality ≡ legacy** — a scene with LOD tiers built renders
//!    bit-identically (image, workload, ledger) to the same scene without
//!    tiers under [`QualityPolicy::FullQuality`], on every scene kind,
//!    raw and VQ, resident and paged, for any worker count.
//! 2. **v3 ⊇ v2** — a single-tier store serialized as a forced version-3
//!    image opens and renders byte-identically to its version-2 sibling.
//! 3. **Tier selection is thread-invariant** — the SSE and byte-budget
//!    policies produce identical frames for any thread count.
//! 4. **Coarser tiers move fewer bytes** — the forced-tier sweep strictly
//!    shrinks fine demand, and per-tier traffic lands in the right
//!    [`TierUsageReport`] lane.
//! 5. **Burst size is a real knob** — the same frame metered at 32 B
//!    bursts moves strictly fewer DRAM transaction bytes than at 64 B,
//!    with identical pixels and identical demand.

use gs_scene::{SceneConfig, SceneKind};
use gs_voxel::{
    PageConfig, QualityPolicy, StreamingConfig, StreamingScene, TierSpec, TierUsageReport,
};
use gs_vq::VqConfig;

/// The ladder every test builds: three tiers of decreasing fidelity.
fn ladder() -> [Option<TierSpec>; 3] {
    StreamingConfig::default_tier_ladder()
}

fn raw_config(voxel_size: f32) -> StreamingConfig {
    StreamingConfig {
        voxel_size,
        ..Default::default()
    }
}

fn vq_config(voxel_size: f32) -> StreamingConfig {
    StreamingConfig {
        voxel_size,
        use_vq: true,
        vq: VqConfig::tiny(),
        ..Default::default()
    }
}

#[test]
fn full_quality_is_bit_identical_to_legacy_on_all_scene_kinds() {
    for kind in SceneKind::ALL {
        let scene = kind.build(&SceneConfig::tiny());
        let cam = &scene.eval_cameras[0];
        for base in [raw_config(scene.voxel_size), vq_config(scene.voxel_size)] {
            let vq = base.use_vq;
            let legacy = StreamingScene::new(scene.trained.clone(), base).render(cam);
            let tiered_cfg = StreamingConfig {
                tiers: ladder(),
                quality: QualityPolicy::FullQuality,
                ..base
            };
            let tiered_scene = StreamingScene::new(scene.trained.clone(), tiered_cfg);
            assert_eq!(tiered_scene.store().tier_count(), 3);
            let tiered = tiered_scene.render(cam);
            assert_eq!(
                legacy.image,
                tiered.image,
                "FullQuality image diverged on {} (vq={vq})",
                kind.name()
            );
            assert_eq!(legacy.workload, tiered.workload);
            assert_eq!(legacy.ledger, tiered.ledger);
            // All traffic and every voxel sits in tier lane 0.
            assert_eq!(
                tiered.tiers.voxels[0],
                tiered_scene.grid().voxel_count() as u64
            );
            assert_eq!(&tiered.tiers.voxels[1..], &[0, 0, 0]);
            assert_eq!(&tiered.tiers.fetched_bytes[1..], &[0, 0, 0]);
            assert_eq!(
                tiered.tiers.fetched_bytes[0],
                legacy.workload.totals().fine_bytes
            );
        }
    }
}

#[test]
fn full_quality_stays_identical_paged_and_across_thread_counts() {
    let scene = SceneKind::Truck.build(&SceneConfig::tiny());
    let cam = &scene.eval_cameras[0];
    let base = vq_config(scene.voxel_size);
    let legacy = StreamingScene::new(scene.trained.clone(), base).render(cam);
    for threads in [1usize, 2, 0] {
        let cfg = StreamingConfig {
            tiers: ladder(),
            threads,
            ..base
        };
        let mut tiered = StreamingScene::new(scene.trained.clone(), cfg);
        assert_eq!(
            legacy.image,
            tiered.render(cam).image,
            "resident FullQuality diverged at threads={threads}"
        );
        tiered.page_out(PageConfig::default());
        let paged = tiered.render(cam);
        assert_eq!(
            legacy.image, paged.image,
            "paged FullQuality diverged at threads={threads}"
        );
        assert_eq!(legacy.ledger, paged.ledger);
    }
}

#[test]
fn single_tier_v3_image_renders_identically_to_v2() {
    let scene = SceneKind::Lego.build(&SceneConfig::tiny());
    let cam = &scene.eval_cameras[0];
    for base in [raw_config(scene.voxel_size), vq_config(scene.voxel_size)] {
        let vq = base.use_vq;
        let mut v2 = StreamingScene::new(scene.trained.clone(), base);
        let mut v3 = v2.clone();
        v2.page_out(PageConfig::default());
        v3.page_out_v3(PageConfig::default());
        let a = v2.render(cam);
        let b = v3.render(cam);
        assert_eq!(a.image, b.image, "v3 image diverged from v2 (vq={vq})");
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.ledger, b.ledger);
        assert!(a.degradation.is_clean() && b.degradation.is_clean());
    }
}

#[test]
fn forced_tier_sweep_strictly_reduces_fine_demand() {
    let scene = SceneKind::Palace.build(&SceneConfig::tiny());
    let cam = &scene.eval_cameras[0];
    let cfg = StreamingConfig {
        tiers: ladder(),
        ..vq_config(scene.voxel_size)
    };
    let prepared = StreamingScene::new(scene.trained.clone(), cfg);
    let mut last = u64::MAX;
    for tier in 0u8..=3 {
        let out = StreamingScene::new(
            scene.trained.clone(),
            StreamingConfig {
                quality: QualityPolicy::ForcedTier { tier },
                ..cfg
            },
        )
        .render(cam);
        let fine = out.workload.totals().fine_bytes;
        assert!(
            fine < last,
            "tier {tier} fine demand {fine} did not shrink below {last}"
        );
        last = fine;
        // Every fine byte lands in the forced tier's lane, and every
        // scene voxel is assigned to it.
        let t = tier as usize;
        assert_eq!(out.tiers.fetched_bytes[t], fine);
        let mut expect = TierUsageReport::default();
        expect.voxels[t] = prepared.grid().voxel_count() as u64;
        assert_eq!(out.tiers.voxels, expect.voxels);
    }
}

#[test]
fn tier_policies_are_thread_invariant() {
    let scene = SceneKind::Playroom.build(&SceneConfig::tiny());
    let cam = &scene.eval_cameras[0];
    let base = StreamingConfig {
        tiers: ladder(),
        ..raw_config(scene.voxel_size)
    };
    for quality in [
        QualityPolicy::ScreenSpaceError { threshold: 64.0 },
        QualityPolicy::ByteBudget { bytes: 200_000 },
    ] {
        let reference = StreamingScene::new(
            scene.trained.clone(),
            StreamingConfig {
                quality,
                threads: 1,
                ..base
            },
        )
        .render(cam);
        for threads in [2usize, 0] {
            let out = StreamingScene::new(
                scene.trained.clone(),
                StreamingConfig {
                    quality,
                    threads,
                    ..base
                },
            )
            .render(cam);
            assert_eq!(
                reference.image, out.image,
                "{quality:?} image diverged at threads={threads}"
            );
            assert_eq!(reference.ledger, out.ledger);
            assert_eq!(reference.workload, out.workload);
            assert_eq!(reference.tiers, out.tiers);
        }
        // A selective policy on this scene actually mixes tiers (the
        // assertions above would pass vacuously if everything stayed in
        // lane 0).
        assert!(
            reference.tiers.voxels[1..].iter().sum::<u64>() > 0,
            "{quality:?} never left tier 0 — threshold/budget too lax for the test scene"
        );
    }
}

#[test]
fn byte_budget_tightening_never_increases_fine_demand() {
    let scene = SceneKind::Train.build(&SceneConfig::tiny());
    let cam = &scene.eval_cameras[0];
    let base = StreamingConfig {
        tiers: ladder(),
        ..vq_config(scene.voxel_size)
    };
    let full = StreamingScene::new(scene.trained.clone(), base)
        .render(cam)
        .workload
        .totals()
        .fine_bytes;
    let mut last = u64::MAX;
    for budget in [1 << 30, 100_000u64, 10_000, 100] {
        let out = StreamingScene::new(
            scene.trained.clone(),
            StreamingConfig {
                quality: QualityPolicy::ByteBudget { bytes: budget },
                ..base
            },
        )
        .render(cam);
        let fine = out.workload.totals().fine_bytes;
        assert!(
            fine <= last,
            "budget {budget} increased fine demand ({fine} > {last})"
        );
        last = fine;
    }
    // The tightest budget ends up strictly below unconstrained demand.
    assert!(
        last < full,
        "tight budget never reduced demand ({last} vs {full})"
    );
}

#[test]
fn smaller_bursts_move_fewer_dram_bytes_for_identical_pixels() {
    let scene = SceneKind::Drjohnson.build(&SceneConfig::tiny());
    let cam = &scene.eval_cameras[0];
    let base = raw_config(scene.voxel_size);
    let narrow = StreamingScene::new(
        scene.trained.clone(),
        StreamingConfig {
            burst_bytes: 32,
            ..base
        },
    )
    .render(cam);
    let wide = StreamingScene::new(
        scene.trained.clone(),
        StreamingConfig {
            burst_bytes: 64,
            ..base
        },
    )
    .render(cam);
    // The burst size is pure metering: pixels and demand are untouched.
    assert_eq!(narrow.image, wide.image);
    assert_eq!(narrow.ledger.total(), wide.ledger.total());
    // Transaction traffic is burst-rounded, so 32 B bursts move strictly
    // fewer bytes than 64 B (220 B raw records round to 224 vs 256), and
    // both at least cover demand.
    assert!(narrow.ledger.dram_total() < wide.ledger.dram_total());
    assert!(narrow.ledger.dram_total() >= narrow.ledger.total());
    // The workload mirrors the ledger for both burst sizes.
    assert_eq!(
        narrow.workload.totals().dram_transaction_bytes(),
        narrow.ledger.dram_total()
    );
    assert_eq!(
        wide.workload.totals().dram_transaction_bytes(),
        wide.ledger.dram_total()
    );
}

/// Renders an alternating two-camera dolly sequence and returns, per
/// frame, the tier map the policy chose (plus the rendered images for
/// exactness checks).
fn dolly_tier_maps(
    scene: &gs_scene::Scene,
    quality: QualityPolicy,
    threads: usize,
    frames: usize,
) -> (Vec<Vec<u8>>, Vec<gs_core::image::ImageRgb>) {
    let cfg = StreamingConfig {
        tiers: ladder(),
        quality,
        threads,
        ..raw_config(scene.voxel_size)
    };
    let streaming = StreamingScene::new(scene.trained.clone(), cfg);
    let near = scene.eval_cameras[0];
    let mut far = near;
    // A small dolly along the view axis: footprints wobble a few percent,
    // flipping SSE tier choices for voxels near a tier boundary.
    far.pose.translation.z += 0.35 * scene.voxel_size;
    let mut maps = Vec::with_capacity(frames);
    let mut images = Vec::with_capacity(frames);
    for f in 0..frames {
        let cam = if f % 2 == 0 { &near } else { &far };
        images.push(streaming.render(cam).image);
        maps.push(streaming.last_tier_map());
    }
    (maps, images)
}

/// Per-voxel tier changes between consecutive frames, summed.
fn flicker_count(maps: &[Vec<u8>]) -> u64 {
    maps.windows(2)
        .map(|w| w[0].iter().zip(&w[1]).filter(|(a, b)| a != b).count() as u64)
        .sum()
}

#[test]
fn hysteresis_reduces_tier_flicker_on_a_dolly_sequence() {
    let scene = SceneKind::Playroom.build(&SceneConfig::tiny());
    let frames = 8;
    let (sse_maps, _) = dolly_tier_maps(
        &scene,
        QualityPolicy::ScreenSpaceError { threshold: 64.0 },
        1,
        frames,
    );
    let (hyst_maps, _) = dolly_tier_maps(
        &scene,
        QualityPolicy::Hysteresis {
            threshold: 64.0,
            margin: 0.25,
        },
        1,
        frames,
    );
    let sse_flicker = flicker_count(&sse_maps);
    let hyst_flicker = flicker_count(&hyst_maps);
    // The dolly must actually provoke flicker under plain SSE, and the
    // policies must actually mix tiers (no vacuous pass).
    assert!(
        sse_flicker > 0,
        "dolly sequence never flipped an SSE tier — widen the dolly"
    );
    assert!(sse_maps[0].iter().any(|&t| t > 0));
    assert!(
        hyst_flicker < sse_flicker,
        "hysteresis did not reduce flicker ({hyst_flicker} vs {sse_flicker})"
    );
    // Frame 0 has no history: hysteresis degenerates to plain SSE.
    assert_eq!(sse_maps[0], hyst_maps[0]);
}

#[test]
fn hysteresis_is_thread_invariant_across_the_whole_sequence() {
    let scene = SceneKind::Playroom.build(&SceneConfig::tiny());
    let quality = QualityPolicy::Hysteresis {
        threshold: 64.0,
        margin: 0.25,
    };
    let frames = 6;
    let (ref_maps, ref_images) = dolly_tier_maps(&scene, quality, 1, frames);
    assert!(
        ref_maps.iter().any(|m| m.iter().any(|&t| t > 0)),
        "hysteresis never left tier 0 — threshold too lax for the test scene"
    );
    for threads in [2usize, 0] {
        let (maps, images) = dolly_tier_maps(&scene, quality, threads, frames);
        // The per-frame tier history is sequence state: every frame of the
        // sequence (not just the last) must match the single-thread run.
        assert_eq!(
            ref_maps, maps,
            "hysteresis tier maps diverged at threads={threads}"
        );
        assert_eq!(
            ref_images, images,
            "hysteresis images diverged at threads={threads}"
        );
    }
}

#[test]
fn zero_margin_hysteresis_matches_screen_space_error() {
    let scene = SceneKind::Playroom.build(&SceneConfig::tiny());
    let frames = 4;
    let (sse_maps, sse_images) = dolly_tier_maps(
        &scene,
        QualityPolicy::ScreenSpaceError { threshold: 64.0 },
        1,
        frames,
    );
    let (hyst_maps, hyst_images) = dolly_tier_maps(
        &scene,
        QualityPolicy::Hysteresis {
            threshold: 64.0,
            margin: 0.0,
        },
        1,
        frames,
    );
    // With no margin the clamp window collapses to the SSE choice itself.
    assert_eq!(sse_maps, hyst_maps);
    assert_eq!(sse_images, hyst_images);
}

#[test]
fn importance_scores_flow_from_constructor_to_tier_pruning() {
    let scene = SceneKind::Lego.build(&SceneConfig::tiny());
    let n = scene.trained.len();
    // Deterministic, id-keyed importance: high ids are "important".
    let importance: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let cfg = StreamingConfig {
        tiers: [
            None,
            Some(TierSpec {
                sh_degree: 1,
                keep_permille: 500,
                codebook_shift: 0,
            }),
            None,
        ],
        ..raw_config(scene.voxel_size)
    };
    let prepared = StreamingScene::new_with_importance(scene.trained.clone(), cfg, &importance);
    let store = prepared.store();
    assert_eq!(store.tier_count(), 1);
    // The kept half must be exactly the high-importance (high-id) half.
    let keep = n.div_ceil(2);
    let cutoff = (n - keep) as u32;
    for vid in 0..prepared.grid().voxel_count() as u32 {
        for tslot in store.tier_slots_of(0, vid) {
            let gid = store.id_of(store.tier_global_slot(0, tslot));
            assert!(
                gid >= cutoff,
                "tier kept low-importance Gaussian {gid} (cutoff {cutoff})"
            );
        }
    }
}
