//! Proves the whole warm group render is allocation-free in steady state.
//!
//! PR 2's counting-allocator test covered the ordering path alone; the CSR
//! group-loop rework extends the zero-alloc property to the entire frame:
//! after warming a [`StreamingScene`] and a reusable [`StreamingOutput`],
//! re-rendering the same camera through [`StreamingScene::render_into`]
//! must perform **zero** heap allocations — resident store, cache on or
//! off. Paged stores are covered too: after the page set and the staging
//! buffer pool warmed up, paged coarse fetches (and whole paged frames)
//! allocate nothing either.
//!
//! The counting allocator is process-global, so this lives in its own
//! integration-test binary.

use gs_mem::cache::CacheConfig;
use gs_mem::TrafficLedger;
use gs_scene::{SceneConfig, SceneKind};
use gs_voxel::{PageConfig, StreamingConfig, StreamingOutput, StreamingScene};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

/// Renders `frames` warm frames and returns the allocations they made.
fn allocs_over_warm_frames(scene: &StreamingScene, frames: u32) -> u64 {
    let cam = gs_core::camera::Camera::look_at(
        gs_core::vec::Vec3::new(0.4, 0.3, -7.5),
        gs_core::vec::Vec3::ZERO,
        gs_core::vec::Vec3::Y,
        160,
        120,
        0.9,
    );
    let mut out = StreamingOutput::default();
    // Warm-up: grows every scratch buffer, the output's buffers, and (for
    // cached configs) the working-set cache's per-set tag lists.
    scene.render_into(&cam, &mut out);
    scene.render_into(&cam, &mut out);
    assert!(out.workload.totals().gaussians_streamed > 0);

    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..frames {
        scene.render_into(&cam, &mut out);
    }
    ALLOCS.load(Ordering::Relaxed) - before
}

fn scene_with(cache: Option<CacheConfig>) -> StreamingScene {
    let scene = SceneKind::Truck.build(&SceneConfig::tiny());
    StreamingScene::new(
        scene.trained.clone(),
        StreamingConfig {
            voxel_size: scene.voxel_size,
            // One explicit worker: the serial group loop, no
            // `available_parallelism` query inside the measured region.
            threads: 1,
            cache,
            ..Default::default()
        },
    )
}

#[test]
fn warm_resident_render_performs_zero_allocations() {
    let scene = scene_with(None);
    assert_eq!(
        allocs_over_warm_frames(&scene, 4),
        0,
        "steady-state resident streaming render must not allocate"
    );
}

#[test]
fn warm_cached_render_performs_zero_allocations() {
    let scene = scene_with(Some(CacheConfig::default()));
    assert_eq!(
        allocs_over_warm_frames(&scene, 4),
        0,
        "steady-state cached streaming render must not allocate"
    );
}

#[test]
fn warm_paged_render_performs_zero_allocations() {
    // Unbounded page budget: after warm-up every page is resident and the
    // staging-buffer pool covers the largest voxel, so even the paged
    // backing renders without allocating.
    let mut scene = scene_with(None);
    scene.page_out(PageConfig {
        slots_per_page: 64,
        max_resident_pages: 0,
        ..PageConfig::default()
    });
    assert_eq!(
        allocs_over_warm_frames(&scene, 4),
        0,
        "steady-state paged streaming render must not allocate"
    );
}

#[test]
fn warm_paged_coarse_fetches_perform_zero_allocations() {
    // The satellite fix in isolation: paged `fetch_coarse` used to build
    // one staging `Vec` per voxel; the return-on-drop buffer pool makes
    // the steady state allocation-free.
    let scene = scene_with(None);
    let paged = scene.store().paged_twin(PageConfig {
        slots_per_page: 32,
        max_resident_pages: 0,
        ..PageConfig::default()
    });
    let mut ledger = TrafficLedger::new();
    let mut checksum = 0u64;
    // Warm-up: materializes every page and grows the pooled buffer.
    for v in 0..paged.voxel_count() as u32 {
        for (slot, _, _) in paged.fetch_coarse(v, &mut ledger) {
            checksum += slot as u64;
        }
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    let mut again = 0u64;
    for _ in 0..3 {
        again = 0;
        for v in 0..paged.voxel_count() as u32 {
            for (slot, _, _) in paged.fetch_coarse(v, &mut ledger) {
                again += slot as u64;
            }
        }
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(again, checksum);
    assert_eq!(
        allocs, 0,
        "warm paged coarse fetches must not allocate (buffer pool)"
    );
}
