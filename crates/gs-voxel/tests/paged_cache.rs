//! Contracts of the paged store backing and the working-set cache model:
//!
//! 1. **Paged ≡ resident** — a store round-tripped through its serialized
//!    scene image (in memory or on disk, bounded page budget or not)
//!    renders byte-identical images, workloads and ledgers on every scene
//!    kind, raw and VQ. Paging is host-memory management, never modeled
//!    traffic.
//! 2. **Cache determinism** — hit/miss counts, ledgers and images are
//!    invariant across worker-thread counts {1, 2, 0}: the cache is
//!    simulated from the recorded fetch trace in global group order.
//! 3. **Cache semantics** — demand bytes are invariant under caching;
//!    warm frames hit; DRAM transaction bytes shrink to burst-rounded
//!    miss fills.

// Tests may unwrap: a panic is exactly the right failure mode here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gs_mem::cache::CacheConfig;
use gs_mem::{Direction, Stage};
use gs_scene::{SceneConfig, SceneKind};
use gs_voxel::{PageConfig, StreamingConfig, StreamingOutput, StreamingScene};
use gs_vq::VqConfig;

fn raw_config(voxel_size: f32) -> StreamingConfig {
    StreamingConfig {
        voxel_size,
        ..Default::default()
    }
}

fn vq_config(voxel_size: f32) -> StreamingConfig {
    StreamingConfig {
        voxel_size,
        use_vq: true,
        vq: VqConfig::tiny(),
        ..Default::default()
    }
}

fn assert_outputs_identical(a: &StreamingOutput, b: &StreamingOutput, what: &str) {
    assert_eq!(a.image, b.image, "image diverged: {what}");
    assert_eq!(a.workload, b.workload, "workload diverged: {what}");
    assert_eq!(a.ledger, b.ledger, "ledger diverged: {what}");
    assert_eq!(a.cache, b.cache, "cache report diverged: {what}");
    assert_eq!(a.violations.flags, b.violations.flags, "flags: {what}");
    assert_eq!(a.degradation, b.degradation, "degradation diverged: {what}");
    assert!(
        a.degradation.is_clean(),
        "fault-free frame degraded: {what}"
    );
}

#[test]
fn paged_store_is_byte_identical_on_all_scene_kinds_raw_and_vq() {
    for kind in SceneKind::ALL {
        let scene = kind.build(&SceneConfig::tiny());
        let cam = &scene.eval_cameras[0];
        for cfg in [raw_config(scene.voxel_size), vq_config(scene.voxel_size)] {
            let vq = cfg.use_vq;
            let resident = StreamingScene::new(scene.trained.clone(), cfg);
            let mut paged = resident.clone();
            paged.page_out(PageConfig {
                slots_per_page: 64,
                max_resident_pages: 0,
                ..PageConfig::default()
            });
            assert!(paged.store().is_paged());
            let mut bounded = resident.clone();
            bounded.page_out(PageConfig {
                slots_per_page: 32,
                max_resident_pages: 3,
                ..PageConfig::default()
            });
            let r = resident.render(cam);
            assert_outputs_identical(
                &r,
                &paged.render(cam),
                &format!("{} paged (vq={vq})", kind.name()),
            );
            assert_outputs_identical(
                &r,
                &bounded.render(cam),
                &format!("{} bounded-paged (vq={vq})", kind.name()),
            );
            // The budget really bounds residency and really evicts.
            assert!(bounded.store().page_faults() > 0);
            let cap = 2 * 3 * 32 * 220; // columns × pages × slots × widest record
            assert!(bounded.store().resident_column_bytes() <= cap);
        }
    }
}

#[test]
fn paged_scene_file_on_disk_renders_identically() {
    let scene = SceneKind::Truck.build(&SceneConfig::tiny());
    let cam = &scene.eval_cameras[0];
    let resident = StreamingScene::new(scene.trained.clone(), vq_config(scene.voxel_size));
    let mut paged = resident.clone();
    let path = std::env::temp_dir().join("gsvs_paged_cache_test.gsvs");
    paged
        .page_out_file(&path, PageConfig::default())
        .expect("page out to file");
    assert_outputs_identical(&resident.render(cam), &paged.render(cam), "file-paged");
    std::fs::remove_file(&path).ok();
}

fn cached_config(voxel_size: f32, threads: usize) -> StreamingConfig {
    StreamingConfig {
        threads,
        cache: Some(CacheConfig::default()),
        ..raw_config(voxel_size)
    }
}

#[test]
fn cache_counts_are_invariant_across_thread_counts() {
    let scene = SceneKind::Playroom.build(&SceneConfig::tiny());
    let cams = &scene.eval_cameras;
    let run = |threads: usize| -> Vec<StreamingOutput> {
        // A fresh scene per thread count: each starts with a cold cache
        // and renders the same two-frame trajectory.
        let s = StreamingScene::new(
            scene.trained.clone(),
            cached_config(scene.voxel_size, threads),
        );
        cams.iter().take(2).map(|c| s.render(c)).collect()
    };
    let one = run(1);
    for threads in [2usize, 0] {
        let other = run(threads);
        for (a, b) in one.iter().zip(&other) {
            assert_outputs_identical(a, b, &format!("threads={threads}"));
            let (ca, cb) = (a.cache.unwrap(), b.cache.unwrap());
            assert_eq!(ca.coarse.hits, cb.coarse.hits, "threads={threads}");
            assert_eq!(ca.coarse.misses(), cb.coarse.misses(), "threads={threads}");
            assert_eq!(ca.fine.hits, cb.fine.hits, "threads={threads}");
            assert_eq!(ca.fine.misses(), cb.fine.misses(), "threads={threads}");
        }
    }
}

#[test]
fn warm_frames_hit_and_shrink_dram_traffic() {
    let scene = SceneKind::Lego.build(&SceneConfig::tiny());
    let cam = &scene.eval_cameras[0];
    let s = StreamingScene::new(scene.trained.clone(), cached_config(scene.voxel_size, 1));
    let cold = s.render(cam);
    let warm = s.render(cam);
    let (cold_c, warm_c) = (cold.cache.unwrap(), warm.cache.unwrap());
    // Frame 2 revisits frame 1's working set: the coarse stage must hit
    // well past the acceptance bar (identical camera ⇒ near-total reuse).
    assert!(
        warm_c.coarse.hit_rate() >= 0.5,
        "warm coarse hit rate only {:.3}",
        warm_c.coarse.hit_rate()
    );
    assert!(warm_c.coarse.hits > cold_c.coarse.hits);
    // Demand is identical frame to frame; DRAM transactions shrink to the
    // (burst-rounded) miss fills.
    assert_eq!(cold.ledger.total(), warm.ledger.total());
    assert!(warm.ledger.dram_total() < cold.ledger.dram_total());
    assert_eq!(
        warm.ledger.dram(Stage::VoxelCoarse, Direction::Read),
        warm_c.coarse.fill_bytes
    );
    assert_eq!(
        warm.ledger.dram(Stage::VoxelFine, Direction::Read),
        warm_c.fine.fill_bytes
    );
    assert_eq!(warm.ledger.hit_total(), warm_c.hit_bytes());
    // reset_cache makes the next frame cold again.
    s.reset_cache();
    let recold = s.render(cam);
    assert_eq!(recold.ledger, cold.ledger);
    assert_eq!(recold.cache, cold.cache);
}

#[test]
fn caching_never_changes_demand_bytes_or_pixels() {
    let scene = SceneKind::Palace.build(&SceneConfig::tiny());
    let cam = &scene.eval_cameras[0];
    let plain = StreamingScene::new(scene.trained.clone(), raw_config(scene.voxel_size));
    let cached = StreamingScene::new(scene.trained.clone(), cached_config(scene.voxel_size, 1));
    let a = plain.render(cam);
    let b = cached.render(cam);
    assert_eq!(a.image, b.image, "the cache is a model, not a data path");
    for stage in [Stage::VoxelCoarse, Stage::VoxelFine] {
        assert_eq!(
            a.ledger.get(stage, Direction::Read),
            b.ledger.get(stage, Direction::Read),
            "demand bytes must be cache-invariant ({stage})"
        );
    }
    assert_eq!(a.ledger.total(), b.ledger.total());
    // Uncached DRAM counts every burst-rounded transfer; a cold cache can
    // only coalesce repeat fetches, never add traffic beyond line padding.
    assert!(b.ledger.dram_total() > 0);
    assert!(a.cache.is_none() && b.cache.is_some());
}

#[test]
fn paged_and_resident_backings_agree_under_caching() {
    let scene = SceneKind::Train.build(&SceneConfig::tiny());
    let cams = &scene.eval_cameras;
    let resident = StreamingScene::new(scene.trained.clone(), cached_config(scene.voxel_size, 2));
    let mut paged = resident.clone();
    paged.page_out(PageConfig {
        slots_per_page: 16,
        max_resident_pages: 4,
        ..PageConfig::default()
    });
    for (i, cam) in cams.iter().take(2).enumerate() {
        assert_outputs_identical(
            &resident.render(cam),
            &paged.render(cam),
            &format!("cached frame {i}"),
        );
    }
}

#[test]
fn cloud_twin_stays_byte_exact_with_cache_enabled() {
    let scene = SceneKind::Lego.build(&SceneConfig::tiny());
    let cam = &scene.eval_cameras[0];
    let cfg = StreamingConfig {
        cache: Some(CacheConfig::default()),
        ..vq_config(scene.voxel_size)
    };
    // Separate clones: the cache is frame-sequence state, so both paths
    // must start cold to compare.
    let a = StreamingScene::new(scene.trained.clone(), cfg);
    let b = a.clone();
    assert_outputs_identical(&a.render(cam), &b.render_cloud_twin(cam), "cloud twin");
}
