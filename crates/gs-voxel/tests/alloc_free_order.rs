//! Proves the VSU ordering path is allocation-free in steady state.
//!
//! A counting global allocator wraps the system allocator; after warming an
//! [`OrderScratch`] with the workload, re-running the exact ordering must
//! perform **zero** heap allocations. This is the strong form of the
//! capacity-stability unit test in `order.rs` — it catches hidden
//! allocations (heap growth, temporary collections) that capacity checks on
//! known buffers would miss.
//!
//! The counting allocator is process-global, so this lives in its own
//! integration-test binary.

use gs_voxel::order::{topological_order_into, OrderScratch};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

#[test]
fn warm_order_scratch_performs_zero_allocations() {
    // A group-sized workload: overlapping forward chains plus a couple of
    // contradictory rays so the cycle-break path is exercised too.
    let mut lists: Vec<Vec<u32>> = (0..32u32).map(|r| (r..r + 48).collect()).collect();
    lists.push((0..40u32).rev().collect());
    let depth_of = |v: u32| v as f32 * 0.25;

    let mut scratch = OrderScratch::new();
    let mut out = Vec::new();
    // Warm-up: grows every buffer to its steady-state size.
    topological_order_into(&lists, depth_of, &mut scratch, &mut out);
    let warm_len = out.len();

    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..8 {
        let stats = topological_order_into(&lists, depth_of, &mut scratch, &mut out);
        assert_eq!(out.len(), warm_len);
        assert!(stats.edges > 0);
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state topological ordering must not allocate"
    );
}
