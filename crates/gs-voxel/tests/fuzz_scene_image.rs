//! Fuzzing the scene-image open path (`open_paged_bytes`) and the
//! fetch-time integrity checks.
//!
//! Contract under test (the PR 6 robustness bar):
//!
//! * **truncated prefixes** of a valid image must always fail `open` with
//!   a typed [`StoreError`] — never panic, never allocate from an
//!   unvalidated length field (the header's counts are bounds-checked
//!   against the source length before any table is sized);
//! * **arbitrary single-byte mutations** of a valid image must never
//!   panic: either `open` rejects the image (metadata is covered by the
//!   prefix CRC) or a full coarse+fine scan of the opened store surfaces
//!   the corruption as a typed error (column payloads are covered by the
//!   per-chunk CRC tables, and CRC-32 detects every single-byte change).

use gs_mem::TrafficLedger;
use gs_voxel::{PageConfig, VoxelStore};
use proptest::prelude::*;
use std::sync::OnceLock;

use gs_scene::{SceneConfig, SceneKind};
use gs_voxel::{StreamingConfig, StreamingScene};
use gs_vq::VqConfig;

/// One raw, one VQ, and one tiered-VQ (v3) scene image, built once
/// (codebook training is the slow part; the properties only mutate
/// bytes).
fn images() -> &'static [Vec<u8>; 3] {
    static IMAGES: OnceLock<[Vec<u8>; 3]> = OnceLock::new();
    IMAGES.get_or_init(|| {
        let scene = SceneKind::Lego.build(&SceneConfig::tiny());
        let raw = StreamingScene::new(
            scene.trained.clone(),
            StreamingConfig {
                voxel_size: scene.voxel_size,
                ..Default::default()
            },
        );
        let vq = StreamingScene::new(
            scene.trained.clone(),
            StreamingConfig {
                voxel_size: scene.voxel_size,
                use_vq: true,
                vq: VqConfig::tiny(),
                ..Default::default()
            },
        );
        let tiered = StreamingScene::new(
            scene.trained.clone(),
            StreamingConfig {
                voxel_size: scene.voxel_size,
                use_vq: true,
                vq: VqConfig::tiny(),
                tiers: StreamingConfig::default_tier_ladder(),
                ..Default::default()
            },
        );
        [
            raw.store().to_scene_bytes(),
            vq.store().to_scene_bytes(),
            tiered.store().to_scene_bytes(),
        ]
    })
}

/// Scans every voxel's coarse column, every slot's fine record, and every
/// extra tier's record column, returning whether any fetch surfaced an
/// error (and panicking never).
fn full_scan_errs(store: &VoxelStore) -> bool {
    let mut ledger = TrafficLedger::new();
    let mut any_err = false;
    for v in 0..store.voxel_count() as u32 {
        match store.try_fetch_coarse(v, &mut ledger) {
            Ok(it) => {
                it.count();
            }
            Err(_) => any_err = true,
        }
    }
    for slot in 0..store.len() as u32 {
        if store.try_fetch_fine(slot, &mut ledger).is_err() {
            any_err = true;
        }
    }
    for t in 0..store.tier_count() {
        for v in 0..store.voxel_count() as u32 {
            for tslot in store.tier_slots_of(t, v) {
                if store.try_fetch_tier_fine(t, tslot, &mut ledger).is_err() {
                    any_err = true;
                }
            }
        }
    }
    any_err
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truncated_prefixes_always_err(which in 0usize..3, frac in 0.0f64..1.0) {
        let img = &images()[which];
        // Any strict prefix, from empty to one byte short.
        let len = ((frac * img.len() as f64) as usize).min(img.len() - 1);
        let trunc = img[..len].to_vec();
        prop_assert!(
            VoxelStore::open_paged_bytes(trunc, PageConfig::default()).is_err(),
            "a {len}-byte prefix of a {}-byte image opened",
            img.len()
        );
    }

    #[test]
    fn single_byte_mutations_are_always_detected(
        which in 0usize..3,
        pos_frac in 0.0f64..1.0,
        xor_m1 in 0u8..255,
    ) {
        let img = &images()[which];
        let pos = ((pos_frac * img.len() as f64) as usize).min(img.len() - 1);
        let xor = xor_m1 + 1; // 1..=255: always a different byte value
        let mut evil = img.clone();
        evil[pos] ^= xor;
        // Small pages so the scan materializes many pages (each page read
        // verifies its covering chunks).
        let config = PageConfig {
            slots_per_page: 8,
            ..PageConfig::default()
        };
        match VoxelStore::open_paged_bytes(evil, config) {
            Err(_) => {} // metadata corruption: rejected at open
            Ok(store) => prop_assert!(
                full_scan_errs(&store),
                "mutation at byte {pos} (xor {xor:#04x}) went undetected"
            ),
        }
    }

    #[test]
    fn mutated_headers_never_panic_or_overallocate(
        which in 0usize..3,
        word in 0usize..8,
        value in 0u32..u32::MAX,
    ) {
        // Overwrite a whole header word with an arbitrary value — the
        // hostile-length case: counts must be bounds-checked against the
        // image length *before* sizing any allocation (an OOM aborts the
        // process, which this test would surface as a crash, not a
        // failure). The v3 image has 8 header words; on v2 the eighth
        // word lands in the slot-range table, which is equally fair game.
        let img = &images()[which];
        let mut evil = img.clone();
        evil[word * 4..word * 4 + 4].copy_from_slice(&value.to_le_bytes());
        let _ = VoxelStore::open_paged_bytes(evil, PageConfig::default());
    }
}
