//! Thread-count determinism of the streaming renderer and the group-size
//! validation contract.

use gs_scene::{SceneConfig, SceneKind};
use gs_voxel::{StreamingConfig, StreamingScene};

#[test]
fn streaming_render_is_thread_count_invariant() {
    for kind in [SceneKind::Lego, SceneKind::Truck] {
        let scene = kind.build(&SceneConfig::tiny());
        let cam = &scene.eval_cameras[0];
        let base = StreamingConfig {
            voxel_size: scene.voxel_size,
            ..Default::default()
        };
        let seq = StreamingScene::new(
            scene.trained.clone(),
            StreamingConfig { threads: 1, ..base },
        )
        .render(cam);
        for threads in [2, 5, 0] {
            let par =
                StreamingScene::new(scene.trained.clone(), StreamingConfig { threads, ..base })
                    .render(cam);
            assert_eq!(seq.image, par.image, "threads={threads} changed the image");
            assert_eq!(
                seq.workload.totals(),
                par.workload.totals(),
                "threads={threads} changed the workload"
            );
            assert_eq!(
                seq.violations.violating_blends, par.violations.violating_blends,
                "threads={threads} changed the violation count"
            );
            assert_eq!(seq.violations.flags, par.violations.flags);
        }
    }
}

#[test]
fn repeated_streaming_frames_are_stable() {
    // The persistent pool + per-chunk scratch must not leak state across
    // frames or cameras.
    let scene = SceneKind::Lego.build(&SceneConfig::tiny());
    let streaming = StreamingScene::new(
        scene.trained.clone(),
        StreamingConfig {
            voxel_size: scene.voxel_size,
            threads: 3,
            ..Default::default()
        },
    );
    let mut firsts = Vec::new();
    for cam in &scene.eval_cameras {
        firsts.push(streaming.render(cam));
    }
    for (cam, first) in scene.eval_cameras.iter().zip(&firsts) {
        let again = streaming.render(cam);
        assert_eq!(again.image, first.image);
        assert_eq!(again.workload.totals(), first.workload.totals());
    }
}

#[test]
fn ray_parallel_mode_is_thread_count_invariant() {
    // A group size that leaves fewer pixel groups than workers flips the
    // renderer into intra-group ray parallelism (the DDA ray grid fans
    // out across the pool instead of the group list). Every observable —
    // image, per-tile workload records, ledger, violations — must be
    // byte-identical to the serial walk for any thread count, exactly
    // like group-level chunking.
    let scene = SceneKind::Truck.build(&SceneConfig::tiny());
    let base = StreamingConfig {
        voxel_size: scene.voxel_size,
        group_size: 128, // 160×120 frame → 2×1 groups
        ..Default::default()
    };
    let seq = StreamingScene::new(
        scene.trained.clone(),
        StreamingConfig { threads: 1, ..base },
    );
    let par = StreamingScene::new(
        scene.trained.clone(),
        StreamingConfig { threads: 8, ..base },
    );
    for cam in &scene.eval_cameras {
        let a = seq.render(cam);
        let b = par.render(cam);
        assert_eq!(a.image, b.image);
        assert_eq!(a.workload, b.workload, "per-tile records must match");
        assert_eq!(a.ledger, b.ledger, "ledger must be thread-invariant");
        assert_eq!(a.violations.flags, b.violations.flags);
    }
}

#[test]
fn group_size_is_validated_once_at_construction() {
    // Below-minimum group sizes are clamped when the scene is prepared —
    // not silently at every use site as the seed did.
    let scene = SceneKind::Lego.build(&SceneConfig::tiny());
    let tiny_groups = StreamingScene::new(
        scene.trained.clone(),
        StreamingConfig {
            voxel_size: scene.voxel_size,
            group_size: 4,
            ..Default::default()
        },
    );
    assert_eq!(
        tiny_groups.config().group_size,
        StreamingConfig::MIN_GROUP_SIZE
    );

    // And the clamped configuration renders identically to an explicit
    // minimum-size configuration.
    let explicit = StreamingScene::new(
        scene.trained.clone(),
        StreamingConfig {
            voxel_size: scene.voxel_size,
            group_size: StreamingConfig::MIN_GROUP_SIZE,
            ..Default::default()
        },
    );
    let cam = &scene.eval_cameras[0];
    let a = tiny_groups.render(cam);
    let b = explicit.render(cam);
    assert_eq!(a.image, b.image);
    assert_eq!(a.workload.totals(), b.workload.totals());
}

#[test]
fn validated_is_idempotent_and_normalizes() {
    let cfg = StreamingConfig {
        group_size: 0,
        ray_stride: 0,
        ..Default::default()
    };
    let v = cfg.validated();
    assert_eq!(v.group_size, StreamingConfig::MIN_GROUP_SIZE);
    assert_eq!(v.ray_stride, 1);
    assert_eq!(v.validated(), v);
    // Valid configs pass through untouched.
    let ok = StreamingConfig {
        group_size: 64,
        ray_stride: 2,
        ..Default::default()
    };
    assert_eq!(ok.validated(), ok);
}

#[test]
fn narrower_frames_do_not_inherit_stale_violations() {
    // Regression: a frame using fewer worker chunks than a previous frame
    // must not re-report the previous frame's violating Gaussians from
    // stale per-chunk scratch slots.
    use gs_core::camera::Camera;
    use gs_core::vec::Vec3;
    use gs_scene::{Gaussian, GaussianCloud};

    let mut cloud = GaussianCloud::new();
    for i in 0..40 {
        let f = i as f32 * 0.13;
        cloud.push(Gaussian::isotropic(
            Vec3::new(f.sin() * 1.2, f.cos() * 0.9, 0.4 * f),
            0.35,
            Vec3::new(0.5 + 0.4 * f.sin(), 0.4, 0.6),
            0.55,
        ));
    }
    let cfg = StreamingConfig {
        voxel_size: 0.5,
        threads: 4,
        ..Default::default()
    };
    let scene = StreamingScene::new(cloud.clone(), cfg);

    // Wide frame: many groups -> 4 chunks, with real ordering violations.
    let wide = Camera::look_at(
        Vec3::new(0.5, 0.3, -8.0),
        Vec3::ZERO,
        Vec3::Y,
        256,
        192,
        0.9,
    );
    let wide_out = scene.render(&wide);
    assert!(
        wide_out.violations.gaussian_ratio() > 0.0,
        "setup: wide frame must violate"
    );

    // Narrow frame looking away from the cloud: 1 group -> 1 chunk, and
    // nothing visible, so zero violations.
    let narrow = Camera::look_at(
        Vec3::new(0.0, 0.0, -8.0),
        Vec3::new(0.0, 0.0, -20.0),
        Vec3::Y,
        32,
        32,
        0.9,
    );
    let narrow_out = scene.render(&narrow);
    let fresh_out = StreamingScene::new(cloud, cfg).render(&narrow);
    assert_eq!(narrow_out.violations.flags, fresh_out.violations.flags);
    assert_eq!(
        narrow_out.violations.violating_blends,
        fresh_out.violations.violating_blends
    );
    assert_eq!(narrow_out.violations.gaussian_ratio(), 0.0);
}
