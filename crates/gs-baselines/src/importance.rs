//! Per-Gaussian importance estimation over a set of training views.

use gs_core::camera::Camera;
use gs_core::ewa::project_gaussian;
use gs_scene::GaussianCloud;

/// Estimates each Gaussian's contribution across `views`.
///
/// The score is the sum over views of `opacity × min(projected area, cap)`
/// for visible Gaussians — the screen-space mass the Gaussian can contribute,
/// which is the quantity both Mini-Splatting's and LightGaussian's
/// importance/significance measures are built around (we omit their
/// transmittance weighting, which requires a full training run).
pub fn view_importance(cloud: &GaussianCloud, views: &[Camera]) -> Vec<f64> {
    let mut scores = vec![0.0f64; cloud.len()];
    // Cap the projected radius so a handful of huge floaters cannot dominate.
    const RADIUS_CAP: f32 = 64.0;
    for cam in views {
        for (i, g) in cloud.iter().enumerate() {
            let Some(p) = project_gaussian(cam, g.pos, g.cov3d()) else {
                continue;
            };
            // Skip fully off-screen Gaussians.
            let w = cam.width() as f32;
            let h = cam.height() as f32;
            if p.mean_px.x + p.radius_px < 0.0
                || p.mean_px.y + p.radius_px < 0.0
                || p.mean_px.x - p.radius_px > w
                || p.mean_px.y - p.radius_px > h
            {
                continue;
            }
            let r = p.radius_px.min(RADIUS_CAP);
            scores[i] += (g.opacity * r * r) as f64;
        }
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_core::vec::Vec3;
    use gs_scene::Gaussian;

    fn cam() -> Camera {
        Camera::look_at(Vec3::new(0.0, 0.0, -5.0), Vec3::ZERO, Vec3::Y, 128, 96, 1.0)
    }

    #[test]
    fn visible_gaussian_scores_higher_than_hidden() {
        let mut cloud = GaussianCloud::new();
        cloud.push(Gaussian::isotropic(Vec3::ZERO, 0.1, Vec3::ONE, 0.9)); // visible
        cloud.push(Gaussian::isotropic(
            Vec3::new(0.0, 0.0, -20.0),
            0.1,
            Vec3::ONE,
            0.9,
        )); // behind
        let s = view_importance(&cloud, &[cam()]);
        assert!(s[0] > 0.0);
        assert_eq!(s[1], 0.0);
    }

    #[test]
    fn opacity_scales_importance() {
        let mut cloud = GaussianCloud::new();
        cloud.push(Gaussian::isotropic(
            Vec3::new(-0.3, 0.0, 0.0),
            0.1,
            Vec3::ONE,
            0.9,
        ));
        cloud.push(Gaussian::isotropic(
            Vec3::new(0.3, 0.0, 0.0),
            0.1,
            Vec3::ONE,
            0.09,
        ));
        let s = view_importance(&cloud, &[cam()]);
        assert!(s[0] > 5.0 * s[1]);
    }

    #[test]
    fn more_views_more_score() {
        let mut cloud = GaussianCloud::new();
        cloud.push(Gaussian::isotropic(Vec3::ZERO, 0.1, Vec3::ONE, 0.9));
        let one = view_importance(&cloud, &[cam()]);
        let two = view_importance(&cloud, &[cam(), cam()]);
        assert!((two[0] - 2.0 * one[0]).abs() < 1e-9);
    }
}
