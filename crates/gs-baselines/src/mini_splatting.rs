//! Mini-Splatting stand-in: importance-weighted Gaussian resampling.
//!
//! Mini-Splatting represents scenes with a constrained number of Gaussians
//! by *sampling* the trained set with probability proportional to each
//! Gaussian's rendering importance (rather than hard top-k pruning, which
//! produces holes). We reproduce that sampling step plus the opacity
//! renormalization that compensates for removed mass.

use crate::importance::view_importance;
use gs_core::camera::Camera;
use gs_scene::GaussianCloud;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Mini-Splatting configuration.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MiniSplattingConfig {
    /// Fraction of Gaussians to keep.
    pub keep_ratio: f64,
    /// Opacity multiplier compensating for removed Gaussians.
    pub opacity_boost: f32,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for MiniSplattingConfig {
    fn default() -> Self {
        MiniSplattingConfig {
            keep_ratio: 0.55,
            opacity_boost: 1.08,
            seed: 0x313131,
        }
    }
}

/// Produces the Mini-Splatting compacted cloud.
///
/// Deterministic in `(cloud, views, config)`.
pub fn mini_splatting(
    cloud: &GaussianCloud,
    views: &[Camera],
    cfg: &MiniSplattingConfig,
) -> GaussianCloud {
    let scores = view_importance(cloud, views);
    let keep = ((cloud.len() as f64 * cfg.keep_ratio).round() as usize).clamp(1, cloud.len());
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Weighted sampling without replacement via the exponential-sort trick:
    // key_i = u_i^(1/w_i) — take the `keep` largest keys.
    let mut keyed: Vec<(f64, usize)> = scores
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let u: f64 = rng.gen_range(1e-12..1.0);
            let key = if w <= 0.0 { -1.0 } else { u.powf(1.0 / w) };
            (key, i)
        })
        .collect();
    keyed.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut chosen: Vec<usize> = keyed.into_iter().take(keep).map(|(_, i)| i).collect();
    chosen.sort_unstable(); // keep source (voxel-friendly) ordering

    let mut out = GaussianCloud::new();
    for i in chosen {
        let mut g = cloud.as_slice()[i].clone();
        g.opacity = (g.opacity * cfg.opacity_boost).min(0.99);
        out.push(g);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_scene::{SceneConfig, SceneKind};

    #[test]
    fn keeps_requested_fraction() {
        let scene = SceneKind::Lego.build(&SceneConfig::tiny());
        let cfg = MiniSplattingConfig {
            keep_ratio: 0.5,
            ..Default::default()
        };
        let out = mini_splatting(&scene.trained, &scene.train_cameras, &cfg);
        let expect = (scene.trained.len() as f64 * 0.5).round() as usize;
        assert_eq!(out.len(), expect);
    }

    #[test]
    fn deterministic() {
        let scene = SceneKind::Truck.build(&SceneConfig::tiny());
        let cfg = MiniSplattingConfig::default();
        let a = mini_splatting(&scene.trained, &scene.train_cameras, &cfg);
        let b = mini_splatting(&scene.trained, &scene.train_cameras, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn prefers_important_gaussians() {
        // With extreme keep ratios, zero-importance Gaussians (behind all
        // cameras) must be dropped first.
        let scene = SceneKind::Lego.build(&SceneConfig::tiny());
        let scores = view_importance(&scene.trained, &scene.train_cameras);
        let cfg = MiniSplattingConfig {
            keep_ratio: 0.3,
            ..Default::default()
        };
        let out = mini_splatting(&scene.trained, &scene.train_cameras, &cfg);
        // Mean importance of the kept set exceeds the full-cloud mean.
        let kept_mean: f64 = {
            // Match kept Gaussians back to indices by position identity.
            use std::collections::HashMap;
            let pos_index: HashMap<[u32; 3], usize> = scene
                .trained
                .iter()
                .enumerate()
                .map(|(i, g)| ([g.pos.x.to_bits(), g.pos.y.to_bits(), g.pos.z.to_bits()], i))
                .collect();
            let mut acc = 0.0;
            for g in &out {
                let i = pos_index[&[g.pos.x.to_bits(), g.pos.y.to_bits(), g.pos.z.to_bits()]];
                acc += scores[i];
            }
            acc / out.len() as f64
        };
        let all_mean: f64 = scores.iter().sum::<f64>() / scores.len() as f64;
        assert!(kept_mean > all_mean, "kept {kept_mean} vs all {all_mean}");
    }

    #[test]
    fn render_quality_stays_reasonable() {
        use gs_render::{RenderConfig, TileRenderer};
        let scene = SceneKind::Palace.build(&SceneConfig::tiny());
        let out = mini_splatting(
            &scene.trained,
            &scene.train_cameras,
            &MiniSplattingConfig::default(),
        );
        let r = TileRenderer::new(RenderConfig::default());
        let cam = &scene.eval_cameras[0];
        let full = r.render(&scene.trained, cam);
        let mini = r.render(&out, cam);
        let psnr = mini.image.psnr(&full.image);
        assert!(psnr > 15.0, "mini-splatting destroyed the render: {psnr}");
    }
}
