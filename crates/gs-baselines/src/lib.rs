//! # gs-baselines — Mini-Splatting and LightGaussian stand-ins
//!
//! Table II of the paper evaluates StreamingGS on three upstream 3DGS
//! algorithms: original 3DGS, **Mini-Splatting** (Fang & Wang 2024 —
//! constrained Gaussian budgets via importance-weighted resampling) and
//! **LightGaussian** (Fan et al. 2023 — global-significance pruning plus SH
//! distillation). This crate implements the inference-relevant core of both
//! so the full evaluation matrix can run: each takes a trained cloud and
//! produces the algorithm's compacted cloud.
//!
//! ## Example
//!
//! ```
//! use gs_baselines::{LightGaussianConfig, MiniSplattingConfig};
//! use gs_baselines::{light_gaussian, mini_splatting};
//! use gs_scene::{SceneConfig, SceneKind};
//!
//! let scene = SceneKind::Lego.build(&SceneConfig::tiny());
//! let mini = mini_splatting(&scene.trained, &scene.train_cameras, &MiniSplattingConfig::default());
//! let light = light_gaussian(&scene.trained, &scene.train_cameras, &LightGaussianConfig::default());
//! assert!(mini.len() < scene.trained.len());
//! assert!(light.len() < scene.trained.len());
//! ```

pub mod importance;
pub mod light_gaussian;
pub mod mini_splatting;

pub use importance::view_importance;
pub use light_gaussian::{light_gaussian, LightGaussianConfig};
pub use mini_splatting::{mini_splatting, MiniSplattingConfig};
