//! LightGaussian stand-in: global-significance pruning + SH distillation.
//!
//! LightGaussian compresses a trained model in three steps: prune by a
//! global significance score, distill the SH colour to a lower degree, and
//! vector-quantize the remainder (the VQ step lives in `gs-vq` and is shared
//! with StreamingGS itself). We reproduce pruning and distillation; both
//! trade PSNR for size, which is why Table II's LightGaussian rows sit below
//! the 3DGS rows.

use crate::importance::view_importance;
use gs_core::camera::Camera;
use gs_core::sh;
use gs_scene::GaussianCloud;
use serde::{Deserialize, Serialize};

/// LightGaussian configuration.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LightGaussianConfig {
    /// Fraction of Gaussians to keep after significance pruning.
    pub keep_ratio: f64,
    /// SH degree kept after distillation (bands above are zeroed).
    pub distill_degree: u8,
    /// Attenuation of the highest kept band (distillation is lossy even on
    /// kept bands).
    pub kept_band_scale: f32,
}

impl Default for LightGaussianConfig {
    fn default() -> Self {
        LightGaussianConfig {
            keep_ratio: 0.45,
            distill_degree: 2,
            kept_band_scale: 0.85,
        }
    }
}

/// Produces the LightGaussian compacted cloud.
pub fn light_gaussian(
    cloud: &GaussianCloud,
    views: &[Camera],
    cfg: &LightGaussianConfig,
) -> GaussianCloud {
    // Global significance: view importance weighted by volume^(1/3) — large
    // structural Gaussians survive, tiny redundant ones go (LightGaussian's
    // GlobalSignificance uses hit-count × opacity × volume weighting).
    let base = view_importance(cloud, views);
    let mut scored: Vec<(f64, usize)> = cloud
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let vol = (g.scale.x * g.scale.y * g.scale.z).max(1e-12) as f64;
            (base[i] * vol.cbrt(), i)
        })
        .collect();
    scored.sort_by(|a, b| b.0.total_cmp(&a.0));
    let keep = ((cloud.len() as f64 * cfg.keep_ratio).round() as usize).clamp(1, cloud.len());
    let mut chosen: Vec<usize> = scored.into_iter().take(keep).map(|(_, i)| i).collect();
    chosen.sort_unstable();

    let mut out = GaussianCloud::new();
    for i in chosen {
        let mut g = cloud.as_slice()[i].clone();
        // SH distillation: zero bands above `distill_degree`, attenuate the
        // highest kept band.
        for degree in 1..=3usize {
            let range = sh::band_range(degree);
            for k in range {
                for c in 0..3 {
                    let idx = 3 * k + c;
                    if degree as u8 > cfg.distill_degree {
                        g.sh[idx] = 0.0;
                    } else if degree as u8 == cfg.distill_degree {
                        g.sh[idx] *= cfg.kept_band_scale;
                    }
                }
            }
        }
        out.push(g);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_scene::{SceneConfig, SceneKind};

    #[test]
    fn prunes_to_keep_ratio() {
        let scene = SceneKind::Train.build(&SceneConfig::tiny());
        let out = light_gaussian(
            &scene.trained,
            &scene.train_cameras,
            &LightGaussianConfig::default(),
        );
        let expect = (scene.trained.len() as f64 * 0.45).round() as usize;
        assert_eq!(out.len(), expect);
    }

    #[test]
    fn distillation_zeroes_high_bands() {
        let scene = SceneKind::Lego.build(&SceneConfig::tiny());
        let cfg = LightGaussianConfig {
            distill_degree: 1,
            ..Default::default()
        };
        let out = light_gaussian(&scene.trained, &scene.train_cameras, &cfg);
        for g in &out {
            for k in sh::band_range(2).chain(sh::band_range(3)) {
                for c in 0..3 {
                    assert_eq!(g.sh[3 * k + c], 0.0);
                }
            }
        }
    }

    #[test]
    fn quality_below_full_model_but_usable() {
        use gs_render::{RenderConfig, TileRenderer};
        let scene = SceneKind::Playroom.build(&SceneConfig::tiny());
        let out = light_gaussian(
            &scene.trained,
            &scene.train_cameras,
            &LightGaussianConfig::default(),
        );
        let r = TileRenderer::new(RenderConfig::default());
        let cam = &scene.eval_cameras[0];
        let full = r.render(&scene.trained, cam);
        let light = r.render(&out, cam);
        let psnr = light.image.psnr(&full.image);
        assert!(psnr > 14.0, "lightgaussian unusable: {psnr}");
        assert!(psnr < 60.0, "pruning 55% should visibly change the image");
    }

    #[test]
    fn deterministic() {
        let scene = SceneKind::Drjohnson.build(&SceneConfig::tiny());
        let cfg = LightGaussianConfig::default();
        let a = light_gaussian(&scene.trained, &scene.train_cameras, &cfg);
        let b = light_gaussian(&scene.trained, &scene.train_cameras, &cfg);
        assert_eq!(a, b);
    }
}
