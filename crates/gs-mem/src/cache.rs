//! Deterministic working-set cache model for streamed voxel data.
//!
//! The streaming pipeline's coarse/fine fetches exhibit strong temporal
//! locality: neighbouring pixel groups intersect overlapping voxel sets and
//! consecutive trajectory frames revisit most of the previous frame's
//! working set. This module models a fixed-budget on-chip cache in front of
//! DRAM so that repeat fetches are priced as on-chip traffic instead of
//! DRAM bursts:
//!
//! * [`WorkingSetCache`] — a set-associative, true-LRU cache over an
//!   abstract byte address space (e.g. a voxel-store column's slot
//!   offsets). Fully deterministic: outcomes depend only on the access
//!   sequence, never on wall-clock or thread schedule.
//! * [`CacheConfig`] — capacity / line size / associativity / DRAM burst
//!   granularity.
//! * [`CacheStats`] / [`CacheReport`] — per-stage hit/miss accounting; the
//!   renderer folds the outcomes into its [`crate::TrafficLedger`] so DRAM
//!   pricing sees only burst-rounded *fill* traffic while hits are metered
//!   as on-chip bytes.
//!
//! The cache is a *model*: it never stores data, only line tags. The
//! byte-exact data path (resident or paged store columns) is orthogonal —
//! the cache decides what the priced hardware would have fetched from DRAM,
//! not what the functional simulation reads.
//!
//! ```
//! use gs_mem::cache::{CacheConfig, CacheStats, WorkingSetCache};
//! let mut c = WorkingSetCache::new(CacheConfig {
//!     capacity_bytes: 4096,
//!     line_bytes: 64,
//!     ways: 4,
//!     burst_bytes: 32,
//! });
//! let mut stats = CacheStats::default();
//! let cold = c.access(0, 128, &mut stats); // two cold lines
//! assert_eq!(cold.fill_bytes, 128);
//! let warm = c.access(0, 128, &mut stats); // same lines again: all hits
//! assert_eq!(warm.fill_bytes, 0);
//! assert_eq!(warm.hit_bytes, 128);
//! assert_eq!(stats.hit_rate(), 0.5);
//! ```

use crate::dram::{round_to_burst, DEFAULT_BURST_BYTES};
use serde::{Deserialize, Serialize};

/// Geometry of a [`WorkingSetCache`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total data capacity in bytes.
    pub capacity_bytes: u64,
    /// Line (fill-granularity) size in bytes.
    pub line_bytes: u64,
    /// Associativity (lines per set). `1` = direct-mapped.
    pub ways: u32,
    /// DRAM burst granularity a line fill is rounded to.
    pub burst_bytes: u64,
}

impl Default for CacheConfig {
    /// A modest on-chip working-set budget: 512 KiB, 64 B lines, 8-way,
    /// LPDDR3-class 32 B bursts.
    fn default() -> Self {
        CacheConfig {
            capacity_bytes: 512 * 1024,
            line_bytes: 64,
            ways: 8,
            burst_bytes: DEFAULT_BURST_BYTES,
        }
    }
}

impl CacheConfig {
    /// Number of sets implied by the geometry (at least 1).
    pub fn sets(&self) -> u64 {
        (self.capacity_bytes / (self.line_bytes.max(1) * self.ways.max(1) as u64)).max(1)
    }

    /// DRAM bytes one line fill moves (the line, burst-rounded).
    pub fn fill_bytes_per_line(&self) -> u64 {
        round_to_burst(self.line_bytes, self.burst_bytes)
    }
}

/// Outcome of one [`WorkingSetCache::access`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Demand bytes served by resident lines (on-chip traffic).
    pub hit_bytes: u64,
    /// Demand bytes that fell in missing lines.
    pub miss_bytes: u64,
    /// Lines filled from DRAM by this access.
    pub fill_lines: u64,
    /// Burst-rounded DRAM traffic of those fills.
    pub fill_bytes: u64,
}

/// Cumulative hit/miss accounting (one instance per pipeline stage).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Line-granular lookups.
    pub accesses: u64,
    /// Lookups that found the line resident.
    pub hits: u64,
    /// Demand bytes served on-chip.
    pub hit_bytes: u64,
    /// Demand bytes that missed.
    pub miss_bytes: u64,
    /// Burst-rounded DRAM fill traffic.
    pub fill_bytes: u64,
}

impl CacheStats {
    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// `hits / accesses` (0 when no accesses).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Folds one access outcome in.
    pub fn record(&mut self, o: &AccessOutcome, lines_touched: u64) {
        self.accesses += lines_touched;
        self.hits += lines_touched - o.fill_lines;
        self.hit_bytes += o.hit_bytes;
        self.miss_bytes += o.miss_bytes;
        self.fill_bytes += o.fill_bytes;
    }
}

/// Per-stage cache accounting of one rendered frame.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheReport {
    /// Coarse-half (first-column) fetches.
    pub coarse: CacheStats,
    /// Fine-half (second-column) fetches.
    pub fine: CacheStats,
}

impl CacheReport {
    /// Total burst-rounded DRAM fill traffic of both stages.
    pub fn fill_bytes(&self) -> u64 {
        self.coarse.fill_bytes + self.fine.fill_bytes
    }

    /// Total on-chip hit bytes of both stages.
    pub fn hit_bytes(&self) -> u64 {
        self.coarse.hit_bytes + self.fine.hit_bytes
    }
}

/// A set-associative, true-LRU working-set cache over line tags.
///
/// The cache stores no data — only which lines are resident — so it can sit
/// beside any byte-exact fetch path and decide how the access *would* have
/// been serviced. All state transitions are deterministic functions of the
/// access sequence.
#[derive(Clone, Debug)]
pub struct WorkingSetCache {
    config: CacheConfig,
    sets: u64,
    /// Per-set MRU-first line tags (tag = global line index).
    tags: Vec<Vec<u64>>,
}

impl WorkingSetCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> WorkingSetCache {
        let sets = config.sets();
        WorkingSetCache {
            config,
            sets,
            tags: vec![Vec::new(); sets as usize],
        }
    }

    /// The geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Evicts everything (e.g. between independent trajectories).
    pub fn reset(&mut self) {
        for s in &mut self.tags {
            s.clear();
        }
    }

    /// Resident lines.
    pub fn resident_lines(&self) -> u64 {
        self.tags.iter().map(|s| s.len() as u64).sum()
    }

    /// Touches `[addr, addr + bytes)`, updating recency and filling missing
    /// lines (evicting LRU lines of full sets), and records the outcome
    /// into `stats`.
    pub fn access(&mut self, addr: u64, bytes: u64, stats: &mut CacheStats) -> AccessOutcome {
        let mut out = AccessOutcome::default();
        if bytes == 0 {
            return out;
        }
        let line = self.config.line_bytes.max(1);
        let ways = self.config.ways.max(1) as usize;
        let first = addr / line;
        let last = (addr + bytes - 1) / line;
        for l in first..=last {
            // Demand bytes of this access that fall inside line `l`.
            let lo = (l * line).max(addr);
            let hi = ((l + 1) * line).min(addr + bytes);
            let demand = hi - lo;
            let set = &mut self.tags[(l % self.sets) as usize];
            if let Some(pos) = set.iter().position(|&t| t == l) {
                // Hit: bump to MRU.
                let t = set.remove(pos);
                set.insert(0, t);
                out.hit_bytes += demand;
            } else {
                // Miss: fill, evicting the set's LRU line when full.
                if set.len() >= ways {
                    set.pop();
                }
                set.insert(0, l);
                out.miss_bytes += demand;
                out.fill_lines += 1;
            }
        }
        out.fill_bytes = out.fill_lines * self.config.fill_bytes_per_line();
        stats.record(&out, last - first + 1);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> WorkingSetCache {
        WorkingSetCache::new(CacheConfig {
            capacity_bytes: 256,
            line_bytes: 32,
            ways: 2,
            burst_bytes: 32,
        })
    }

    #[test]
    fn geometry() {
        let c = tiny();
        assert_eq!(c.config().sets(), 4);
        assert_eq!(c.config().fill_bytes_per_line(), 32);
        // Sub-burst lines round up to one burst.
        let cfg = CacheConfig {
            line_bytes: 16,
            ..CacheConfig::default()
        };
        assert_eq!(cfg.fill_bytes_per_line(), 32);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        let mut s = CacheStats::default();
        let a = c.access(0, 32, &mut s);
        assert_eq!(a.fill_lines, 1);
        assert_eq!(a.miss_bytes, 32);
        assert_eq!(a.hit_bytes, 0);
        let b = c.access(0, 32, &mut s);
        assert_eq!(b.fill_lines, 0);
        assert_eq!(b.hit_bytes, 32);
        assert_eq!(s.accesses, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses(), 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn partial_line_demand_is_split_exactly() {
        let mut c = tiny();
        let mut s = CacheStats::default();
        // 13 bytes straddling a line boundary: 32-aligned lines at 0 and 32.
        let o = c.access(25, 13, &mut s);
        assert_eq!(o.fill_lines, 2);
        assert_eq!(o.miss_bytes, 13);
        assert_eq!(o.hit_bytes + o.miss_bytes, 13);
        // Touch line 0 only: hit with 7 demand bytes.
        let o2 = c.access(25, 7, &mut s);
        assert_eq!(o2.hit_bytes, 7);
        assert_eq!(o2.fill_lines, 0);
    }

    #[test]
    fn lru_evicts_least_recent_within_set() {
        // 4 sets × 2 ways; lines 0, 4, 8 all map to set 0.
        let mut c = tiny();
        let mut s = CacheStats::default();
        c.access(0, 1, &mut s); // line 0
        c.access(4 * 32, 1, &mut s); // line 4
        c.access(0, 1, &mut s); // line 0 → MRU
        c.access(8 * 32, 1, &mut s); // line 8 evicts line 4 (LRU)
        let hit0 = c.access(0, 1, &mut s);
        assert_eq!(hit0.fill_lines, 0, "line 0 was MRU, must survive");
        let miss4 = c.access(4 * 32, 1, &mut s);
        assert_eq!(miss4.fill_lines, 1, "line 4 was LRU, must be gone");
        assert!(c.resident_lines() <= 8);
    }

    #[test]
    fn determinism_same_trace_same_stats() {
        let trace: Vec<(u64, u64)> = (0..200).map(|i| ((i * 37) % 600, 1 + i % 90)).collect();
        let run = || {
            let mut c = tiny();
            let mut s = CacheStats::default();
            for &(a, b) in &trace {
                c.access(a, b, &mut s);
            }
            s
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn report_totals_sum_both_stages() {
        let mut c = tiny();
        let mut s = CacheStats::default();
        c.access(0, 64, &mut s);
        c.access(0, 64, &mut s);
        assert_eq!(s.hits, 2);
        let r = CacheReport {
            coarse: s,
            fine: CacheStats::default(),
        };
        assert_eq!(r.fill_bytes(), s.fill_bytes);
        assert_eq!(r.hit_bytes(), s.hit_bytes);
    }

    #[test]
    fn reset_makes_everything_cold_again() {
        let mut c = tiny();
        let mut s = CacheStats::default();
        c.access(0, 32, &mut s);
        c.reset();
        let o = c.access(0, 32, &mut s);
        assert_eq!(o.fill_lines, 1);
        assert_eq!(c.resident_lines(), 1);
    }
}
