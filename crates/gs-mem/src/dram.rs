//! LPDDR3-class DRAM bandwidth and energy model.

use serde::{Deserialize, Serialize};

/// The workspace's default DRAM burst granularity in bytes: the LPDDR3
/// minimum transaction of [`DramModel::lpddr3_x4`]. Metering sites that
/// record per-transfer DRAM traffic without an explicit
/// [`crate::cache::CacheConfig`] round to this.
pub const DEFAULT_BURST_BYTES: u64 = 32;

/// Rounds one transfer up to `burst` granularity (`burst == 0` is treated
/// as no rounding). Burst rounding is per *transaction*: a scattered fetch
/// of n records costs `n * round_to_burst(record, burst)`, not
/// `round_to_burst(n * record, burst)` — summing before rounding is exactly
/// the under-pricing bug this helper exists to avoid.
pub fn round_to_burst(bytes: u64, burst: u64) -> u64 {
    if burst == 0 {
        bytes
    } else {
        bytes.div_ceil(burst) * burst
    }
}

/// DRAM timing/energy parameters.
///
/// The paper's memory system is Micron 16 Gb LPDDR3 with 4 channels; at
/// LPDDR3-1600 each ×32 channel peaks at 6.4 GB/s, 25.6 GB/s aggregate.
/// Energy per byte follows the Micron power calculator class of numbers
/// (≈45 pJ/B dynamic for LPDDR3 read+I/O).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DramModel {
    /// Number of channels.
    pub channels: u32,
    /// Peak bandwidth per channel in bytes/second.
    pub bytes_per_sec_per_channel: f64,
    /// Sustainable fraction of peak (row misses, refresh, scheduling).
    pub efficiency: f64,
    /// Minimum burst granularity in bytes (transactions round up to this).
    pub burst_bytes: u64,
    /// Dynamic energy per byte moved, picojoules.
    pub pj_per_byte: f64,
    /// Background (refresh + standby) power in milliwatts.
    pub static_mw: f64,
}

impl DramModel {
    /// The paper's configuration: LPDDR3-1600, 4 channels.
    pub fn lpddr3_x4() -> DramModel {
        DramModel {
            channels: 4,
            bytes_per_sec_per_channel: 6.4e9,
            efficiency: 1.0,
            burst_bytes: 32,
            pj_per_byte: 45.0,
            static_mw: 40.0,
        }
    }

    /// The Jetson Orin NX memory system (128-bit LPDDR5, 102.4 GB/s peak).
    pub fn orin_nx() -> DramModel {
        DramModel {
            channels: 1,
            bytes_per_sec_per_channel: 102.4e9,
            efficiency: 0.7,
            burst_bytes: 64,
            pj_per_byte: 22.0, // LPDDR5 is roughly 2× more efficient per bit
            static_mw: 400.0,
        }
    }

    /// Aggregate sustained bandwidth in bytes/second.
    pub fn bandwidth(&self) -> f64 {
        self.channels as f64 * self.bytes_per_sec_per_channel * self.efficiency
    }

    /// Rounds a transfer up to burst granularity.
    pub fn burst_round(&self, bytes: u64) -> u64 {
        round_to_burst(bytes, self.burst_bytes)
    }

    /// Time to move `bytes` at sustained bandwidth, in nanoseconds.
    pub fn transfer_ns(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bandwidth() * 1e9
    }

    /// Dynamic energy to move `bytes`, in picojoules.
    pub fn dynamic_pj(&self, bytes: u64) -> f64 {
        bytes as f64 * self.pj_per_byte
    }

    /// Static/background energy over `seconds`, in picojoules.
    pub fn static_pj(&self, seconds: f64) -> f64 {
        self.static_mw * 1e-3 * seconds * 1e12
    }
}

impl Default for DramModel {
    fn default() -> Self {
        DramModel::lpddr3_x4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpddr3_bandwidth_matches_datasheet_class() {
        let d = DramModel::lpddr3_x4();
        assert!((d.bandwidth() - 25.6e9).abs() < 1e6);
    }

    #[test]
    fn orin_bandwidth_limit_matches_paper_line() {
        // Fig. 4 draws the Orin NX limit at 102.4 GB/s (peak).
        let d = DramModel::orin_nx();
        assert!((d.channels as f64 * d.bytes_per_sec_per_channel - 102.4e9).abs() < 1e6);
    }

    #[test]
    fn burst_rounding() {
        let d = DramModel::lpddr3_x4();
        assert_eq!(d.burst_round(1), 32);
        assert_eq!(d.burst_round(32), 32);
        assert_eq!(d.burst_round(33), 64);
        assert_eq!(d.burst_round(0), 0);
    }

    #[test]
    fn free_rounding_helper_matches_model_and_tolerates_zero_burst() {
        assert_eq!(round_to_burst(13, 32), 32);
        assert_eq!(round_to_burst(13, 0), 13);
        assert_eq!(round_to_burst(0, 32), 0);
        assert_eq!(DEFAULT_BURST_BYTES, DramModel::lpddr3_x4().burst_bytes);
        // Per-transaction rounding of n scattered records never equals the
        // rounded sum for sub-burst records.
        let n = 10u64;
        assert_eq!(n * round_to_burst(13, 32), 320);
        assert_eq!(round_to_burst(n * 13, 32), 160);
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let d = DramModel::lpddr3_x4();
        let t1 = d.transfer_ns(1_000_000);
        let t2 = d.transfer_ns(2_000_000);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn energy_accounting() {
        let d = DramModel::lpddr3_x4();
        assert!((d.dynamic_pj(100) - 4_500.0).abs() < 1e-9);
        // 1 ms of standby at 40 mW = 40 µJ = 4e7 pJ.
        assert!((d.static_pj(1e-3) - 4e7).abs() < 1.0);
    }
}
