//! Per-stage DRAM traffic ledger.
//!
//! The ledger is the workspace's **single source of byte truth**: the
//! streaming renderer (`gs_voxel::streaming`) owns one ledger per worker,
//! meters every `VoxelStore` fetch and pixel writeback through it as the
//! bytes move, and merges the workers' ledgers once per frame in
//! deterministic worker order. Derived byte counters
//! (`TileWorkload::{coarse_bytes, fine_bytes, pixel_bytes}`) are read back
//! *from* ledger stages, never computed independently, so ledger totals and
//! workload totals can never drift apart — and `gs-accel` prices DRAM time
//! and energy from the same measured bytes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Pipeline stages that generate DRAM traffic.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Tile-centric projection stage.
    Projection,
    /// Tile-centric global sorting stage.
    Sorting,
    /// Tile-centric rendering stage.
    Rendering,
    /// Streaming pipeline: coarse-half voxel fetches.
    VoxelCoarse,
    /// Streaming pipeline: fine-half fetches (raw 220 B records or VQ
    /// index records, whichever the store holds).
    VoxelFine,
    /// Final pixel writeback.
    PixelOut,
}

/// Number of quality tiers the ledger tracks for the fine (second-half)
/// stage: tier 0 is full quality (today's raw/VQ records); tiers 1+ are
/// the coarsened LOD columns of a tiered scene image. Sized one above the
/// maximum extra-tier count so `tier 0 + extras` always fits.
pub const MAX_TIERS: usize = 4;

impl Stage {
    /// All stages, in display order.
    pub const ALL: [Stage; 6] = [
        Stage::Projection,
        Stage::Sorting,
        Stage::Rendering,
        Stage::VoxelCoarse,
        Stage::VoxelFine,
        Stage::PixelOut,
    ];
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Stage::Projection => "projection",
            Stage::Sorting => "sorting",
            Stage::Rendering => "rendering",
            Stage::VoxelCoarse => "voxel-coarse",
            Stage::VoxelFine => "voxel-fine",
            Stage::PixelOut => "pixel-out",
        };
        f.write_str(s)
    }
}

/// Traffic direction.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Direction {
    Read,
    Write,
}

/// Byte counters keyed by `(stage, direction)`.
///
/// Backed by flat `[stage][direction]` counter arrays — the key domain is
/// tiny and fixed, so every operation is allocation-free and a per-worker
/// ledger can be cleared and refilled each frame without heap churn
/// (preserving the streaming renderer's zero-alloc steady state).
///
/// The ledger keeps three counter classes per `(stage, direction)`:
///
/// * **demand bytes** ([`TrafficLedger::add`] / [`TrafficLedger::get`] /
///   [`TrafficLedger::total`]) — the bytes the pipeline asked for. This is
///   the byte-exactness invariant: identical renders produce identical
///   demand counters regardless of caching or burst geometry.
/// * **DRAM transaction bytes** ([`TrafficLedger::note_dram`] /
///   [`TrafficLedger::dram`] / [`TrafficLedger::dram_total`]) — what DRAM
///   actually moved: burst-rounded per transfer at the metering site, and
///   only cache *misses* when a working-set cache fronts the stage. This is
///   the number DRAM time/energy pricing consumes.
/// * **cache-hit bytes** ([`TrafficLedger::note_hit`] /
///   [`TrafficLedger::hit`] / [`TrafficLedger::hit_total`]) — demand served
///   on-chip by a [`crate::cache::WorkingSetCache`]; priced as SRAM
///   traffic, never as DRAM.
///
/// [`TrafficLedger::add_transfer`] is the uncached convenience: one DRAM
/// transaction whose demand and burst-rounded bytes land together.
///
/// ```
/// use gs_mem::ledger::{Direction, Stage, TrafficLedger};
/// let mut l = TrafficLedger::new();
/// l.add_transfer(Stage::VoxelFine, Direction::Read, 13, 32);
/// assert_eq!(l.total(), 13); // demand
/// assert_eq!(l.dram_total(), 32); // one whole burst moved
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficLedger {
    /// Demand bytes per `(stage, direction)`, indexed by declaration order.
    bytes: [[u64; 2]; Stage::ALL.len()],
    /// Burst-rounded DRAM transaction bytes (cache misses only when a
    /// cache fronts the stage).
    dram: [[u64; 2]; Stage::ALL.len()],
    /// Demand bytes served on-chip by a working-set cache.
    hits: [[u64; 2]; Stage::ALL.len()],
    /// Fine-stage (second-half) demand bytes per quality tier. Tier 0 is
    /// the full-quality column; tiers 1+ are LOD columns. The sum over
    /// tiers equals the `VoxelFine` read demand counter whenever every
    /// fine fetch is tier-attributed (the streaming renderer's contract).
    tier_bytes: [u64; MAX_TIERS],
    /// Fine-stage DRAM transaction bytes per quality tier (burst-rounded,
    /// cache misses only when a cache fronts the stage).
    tier_dram: [u64; MAX_TIERS],
}

impl TrafficLedger {
    /// Creates an empty ledger.
    pub fn new() -> TrafficLedger {
        TrafficLedger::default()
    }

    /// Adds `bytes` to a demand counter.
    pub fn add(&mut self, stage: Stage, dir: Direction, bytes: u64) {
        self.bytes[stage as usize][dir as usize] += bytes;
    }

    /// Meters one uncached DRAM transaction: `bytes` of demand plus the
    /// burst-rounded transaction bytes (`bytes` rounded up to `burst`).
    pub fn add_transfer(&mut self, stage: Stage, dir: Direction, bytes: u64, burst: u64) {
        self.bytes[stage as usize][dir as usize] += bytes;
        self.dram[stage as usize][dir as usize] += crate::dram::round_to_burst(bytes, burst);
    }

    /// Meters DRAM transaction bytes only (already burst-rounded by the
    /// caller — e.g. a cache line fill whose demand was metered separately).
    pub fn note_dram(&mut self, stage: Stage, dir: Direction, bytes: u64) {
        self.dram[stage as usize][dir as usize] += bytes;
    }

    /// Meters cache-hit bytes only (demand served on-chip; the demand
    /// itself was metered separately via [`TrafficLedger::add`]).
    pub fn note_hit(&mut self, stage: Stage, dir: Direction, bytes: u64) {
        self.hits[stage as usize][dir as usize] += bytes;
    }

    /// Attributes fine-stage demand bytes to quality tier `tier` (the
    /// aggregate `VoxelFine` demand is metered separately via
    /// [`TrafficLedger::add`]; this records the per-tier breakdown).
    ///
    /// # Panics
    ///
    /// Panics when `tier >= MAX_TIERS` — tier indices come from the store's
    /// validated tier directory, so an out-of-range index is a logic bug.
    pub fn note_tier(&mut self, tier: usize, bytes: u64) {
        self.tier_bytes[tier] += bytes;
    }

    /// Attributes fine-stage DRAM transaction bytes (already burst-rounded
    /// by the caller) to quality tier `tier`.
    ///
    /// # Panics
    ///
    /// Panics when `tier >= MAX_TIERS` (logic bug, as in
    /// [`TrafficLedger::note_tier`]).
    pub fn note_tier_dram(&mut self, tier: usize, bytes: u64) {
        self.tier_dram[tier] += bytes;
    }

    /// Fine-stage demand bytes attributed to quality tier `tier`.
    pub fn tier_demand(&self, tier: usize) -> u64 {
        self.tier_bytes[tier]
    }

    /// Fine-stage DRAM transaction bytes attributed to quality tier `tier`.
    pub fn tier_dram(&self, tier: usize) -> u64 {
        self.tier_dram[tier]
    }

    /// The full per-tier fine DRAM transaction breakdown (tier 0 first).
    pub fn tier_dram_all(&self) -> [u64; MAX_TIERS] {
        self.tier_dram
    }

    /// The full per-tier fine demand breakdown (tier 0 first).
    pub fn tier_demand_all(&self) -> [u64; MAX_TIERS] {
        self.tier_bytes
    }

    /// Reads a demand counter.
    pub fn get(&self, stage: Stage, dir: Direction) -> u64 {
        self.bytes[stage as usize][dir as usize]
    }

    /// Reads a DRAM transaction counter.
    pub fn dram(&self, stage: Stage, dir: Direction) -> u64 {
        self.dram[stage as usize][dir as usize]
    }

    /// Reads a cache-hit counter.
    pub fn hit(&self, stage: Stage, dir: Direction) -> u64 {
        self.hits[stage as usize][dir as usize]
    }

    /// All DRAM transaction bytes (burst-rounded; post-cache).
    pub fn dram_total(&self) -> u64 {
        self.dram.iter().flatten().sum()
    }

    /// All cache-hit bytes.
    pub fn hit_total(&self) -> u64 {
        self.hits.iter().flatten().sum()
    }

    /// `true` when the ledger carries DRAM transaction/hit accounting
    /// (ledgers rebuilt from pre-cache workloads carry demand only).
    pub fn has_dram_accounting(&self) -> bool {
        self.dram_total() > 0 || self.hit_total() > 0
    }

    /// Read + write bytes of one stage.
    pub fn stage_total(&self, stage: Stage) -> u64 {
        self.get(stage, Direction::Read) + self.get(stage, Direction::Write)
    }

    /// All bytes.
    pub fn total(&self) -> u64 {
        self.bytes.iter().flatten().sum()
    }

    /// Fraction of the total contributed by `stage` (0 when empty).
    pub fn stage_fraction(&self, stage: Stage) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.stage_total(stage) as f64 / t as f64
        }
    }

    /// Merges another ledger into this one (all three counter classes).
    pub fn merge(&mut self, other: &TrafficLedger) {
        let pairs = [
            (&mut self.bytes, &other.bytes),
            (&mut self.dram, &other.dram),
            (&mut self.hits, &other.hits),
        ];
        for (mine, theirs) in pairs {
            for (m, t) in mine.iter_mut().flatten().zip(theirs.iter().flatten()) {
                *m += *t;
            }
        }
        for (m, t) in self.tier_bytes.iter_mut().zip(&other.tier_bytes) {
            *m += *t;
        }
        for (m, t) in self.tier_dram.iter_mut().zip(&other.tier_dram) {
            *m += *t;
        }
    }

    /// Zeroes every counter in place (no allocation, no deallocation —
    /// per-worker ledgers are cleared at frame start and refilled while
    /// rendering).
    pub fn clear(&mut self) {
        self.bytes = Default::default();
        self.dram = Default::default();
        self.hits = Default::default();
        self.tier_bytes = Default::default();
        self.tier_dram = Default::default();
    }

    /// Iterates non-zero `(stage, direction, bytes)` entries in stable
    /// (stage, direction) declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (Stage, Direction, u64)> + '_ {
        Stage::ALL.into_iter().flat_map(move |s| {
            [Direction::Read, Direction::Write]
                .into_iter()
                .map(move |d| (s, d, self.get(s, d)))
                .filter(|(_, _, b)| *b > 0)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_totals() {
        let mut l = TrafficLedger::new();
        l.add(Stage::Sorting, Direction::Read, 10);
        l.add(Stage::Sorting, Direction::Read, 5);
        l.add(Stage::Sorting, Direction::Write, 7);
        l.add(Stage::Rendering, Direction::Write, 3);
        assert_eq!(l.get(Stage::Sorting, Direction::Read), 15);
        assert_eq!(l.stage_total(Stage::Sorting), 22);
        assert_eq!(l.total(), 25);
    }

    #[test]
    fn fractions_sum_to_one_over_used_stages() {
        let mut l = TrafficLedger::new();
        l.add(Stage::Projection, Direction::Read, 40);
        l.add(Stage::Sorting, Direction::Read, 50);
        l.add(Stage::Rendering, Direction::Read, 10);
        let sum: f64 = [Stage::Projection, Stage::Sorting, Stage::Rendering]
            .iter()
            .map(|s| l.stage_fraction(*s))
            .sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_is_associative_on_samples() {
        let mut a = TrafficLedger::new();
        a.add(Stage::Projection, Direction::Read, 1);
        let mut b = TrafficLedger::new();
        b.add(Stage::Projection, Direction::Read, 2);
        b.add(Stage::PixelOut, Direction::Write, 9);
        let mut c = TrafficLedger::new();
        c.add(Stage::VoxelFine, Direction::Read, 4);

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
    }

    #[test]
    fn empty_ledger_fraction_is_zero() {
        assert_eq!(TrafficLedger::new().stage_fraction(Stage::Sorting), 0.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(Stage::VoxelCoarse.to_string(), "voxel-coarse");
        assert_eq!(Stage::ALL.len(), 6);
    }

    #[test]
    fn all_order_matches_discriminants() {
        // The flat counter array indexes by discriminant; `Stage::ALL`
        // must list the stages in exactly that order for `iter()`.
        for (i, s) in Stage::ALL.into_iter().enumerate() {
            assert_eq!(s as usize, i);
        }
    }

    #[test]
    fn clear_zeroes_and_compares_equal_to_fresh() {
        let mut l = TrafficLedger::new();
        l.add(Stage::VoxelFine, Direction::Read, 99);
        l.clear();
        assert_eq!(l, TrafficLedger::new());
        assert_eq!(l.total(), 0);
        assert_eq!(l.iter().count(), 0);
    }

    #[test]
    fn transfer_hit_and_dram_counters_are_separate_classes() {
        let mut l = TrafficLedger::new();
        // Two scattered 13 B records: demand 26, DRAM two whole bursts.
        l.add_transfer(Stage::VoxelFine, Direction::Read, 13, 32);
        l.add_transfer(Stage::VoxelFine, Direction::Read, 13, 32);
        assert_eq!(l.get(Stage::VoxelFine, Direction::Read), 26);
        assert_eq!(l.dram(Stage::VoxelFine, Direction::Read), 64);
        // A cached stage: demand metered, hit + fill noted separately.
        l.add(Stage::VoxelCoarse, Direction::Read, 100);
        l.note_hit(Stage::VoxelCoarse, Direction::Read, 60);
        l.note_dram(Stage::VoxelCoarse, Direction::Read, 64);
        assert_eq!(l.total(), 126);
        assert_eq!(l.dram_total(), 128);
        assert_eq!(l.hit_total(), 60);
        assert!(l.has_dram_accounting());
        assert!(!TrafficLedger::new().has_dram_accounting());
    }

    #[test]
    fn merge_and_clear_cover_all_counter_classes() {
        let mut a = TrafficLedger::new();
        a.add_transfer(Stage::VoxelCoarse, Direction::Read, 48, 32);
        a.note_hit(Stage::VoxelFine, Direction::Read, 5);
        let mut b = TrafficLedger::new();
        b.note_dram(Stage::PixelOut, Direction::Write, 32);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.total(), 48);
        assert_eq!(m.dram_total(), 64 + 32);
        assert_eq!(m.hit_total(), 5);
        m.clear();
        assert_eq!(m, TrafficLedger::new());
        assert!(!m.has_dram_accounting());
    }

    #[test]
    fn tier_counters_merge_clear_and_compare() {
        let mut a = TrafficLedger::new();
        a.add(Stage::VoxelFine, Direction::Read, 220);
        a.note_tier(0, 220);
        a.note_tier_dram(0, 224);
        let mut b = TrafficLedger::new();
        b.note_tier(2, 76);
        b.note_tier_dram(2, 96);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.tier_demand(0), 220);
        assert_eq!(m.tier_demand(2), 76);
        assert_eq!(m.tier_dram(0), 224);
        assert_eq!(m.tier_dram(2), 96);
        assert_eq!(m.tier_demand_all(), [220, 0, 76, 0]);
        assert_eq!(m.tier_dram_all(), [224, 0, 96, 0]);
        // Tier counters participate in equality and clearing like every
        // other counter class (they are part of the determinism surface).
        let mut c = m.clone();
        assert_eq!(c, m);
        c.note_tier(1, 1);
        assert_ne!(c, m);
        m.clear();
        assert_eq!(m, TrafficLedger::new());
    }

    #[test]
    fn iter_skips_zero_entries_in_stable_order() {
        let mut l = TrafficLedger::new();
        l.add(Stage::PixelOut, Direction::Write, 4);
        l.add(Stage::Projection, Direction::Read, 1);
        let got: Vec<_> = l.iter().collect();
        assert_eq!(
            got,
            vec![
                (Stage::Projection, Direction::Read, 1),
                (Stage::PixelOut, Direction::Write, 4),
            ]
        );
    }
}
