//! Per-stage DRAM traffic ledger.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Pipeline stages that generate DRAM traffic.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Tile-centric projection stage.
    Projection,
    /// Tile-centric global sorting stage.
    Sorting,
    /// Tile-centric rendering stage.
    Rendering,
    /// Streaming pipeline: coarse-half voxel fetches.
    VoxelCoarse,
    /// Streaming pipeline: fine-half (VQ index) fetches.
    VoxelFine,
    /// Final pixel writeback.
    PixelOut,
}

impl Stage {
    /// All stages, in display order.
    pub const ALL: [Stage; 6] = [
        Stage::Projection,
        Stage::Sorting,
        Stage::Rendering,
        Stage::VoxelCoarse,
        Stage::VoxelFine,
        Stage::PixelOut,
    ];
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Stage::Projection => "projection",
            Stage::Sorting => "sorting",
            Stage::Rendering => "rendering",
            Stage::VoxelCoarse => "voxel-coarse",
            Stage::VoxelFine => "voxel-fine",
            Stage::PixelOut => "pixel-out",
        };
        f.write_str(s)
    }
}

/// Traffic direction.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Direction {
    Read,
    Write,
}

/// Byte counters keyed by `(stage, direction)`.
///
/// ```
/// use gs_mem::ledger::{Direction, Stage, TrafficLedger};
/// let mut l = TrafficLedger::new();
/// l.add(Stage::Projection, Direction::Read, 1000);
/// l.add(Stage::Projection, Direction::Write, 200);
/// assert_eq!(l.stage_total(Stage::Projection), 1200);
/// assert_eq!(l.total(), 1200);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficLedger {
    entries: BTreeMap<(Stage, Direction), u64>,
}

impl TrafficLedger {
    /// Creates an empty ledger.
    pub fn new() -> TrafficLedger {
        TrafficLedger::default()
    }

    /// Adds `bytes` to a counter.
    pub fn add(&mut self, stage: Stage, dir: Direction, bytes: u64) {
        *self.entries.entry((stage, dir)).or_insert(0) += bytes;
    }

    /// Reads a counter.
    pub fn get(&self, stage: Stage, dir: Direction) -> u64 {
        self.entries.get(&(stage, dir)).copied().unwrap_or(0)
    }

    /// Read + write bytes of one stage.
    pub fn stage_total(&self, stage: Stage) -> u64 {
        self.get(stage, Direction::Read) + self.get(stage, Direction::Write)
    }

    /// All bytes.
    pub fn total(&self) -> u64 {
        self.entries.values().sum()
    }

    /// Fraction of the total contributed by `stage` (0 when empty).
    pub fn stage_fraction(&self, stage: Stage) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.stage_total(stage) as f64 / t as f64
        }
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &TrafficLedger) {
        for (k, v) in &other.entries {
            *self.entries.entry(*k).or_insert(0) += v;
        }
    }

    /// Iterates non-zero `(stage, direction, bytes)` entries in stable order.
    pub fn iter(&self) -> impl Iterator<Item = (Stage, Direction, u64)> + '_ {
        self.entries.iter().map(|((s, d), b)| (*s, *d, *b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_totals() {
        let mut l = TrafficLedger::new();
        l.add(Stage::Sorting, Direction::Read, 10);
        l.add(Stage::Sorting, Direction::Read, 5);
        l.add(Stage::Sorting, Direction::Write, 7);
        l.add(Stage::Rendering, Direction::Write, 3);
        assert_eq!(l.get(Stage::Sorting, Direction::Read), 15);
        assert_eq!(l.stage_total(Stage::Sorting), 22);
        assert_eq!(l.total(), 25);
    }

    #[test]
    fn fractions_sum_to_one_over_used_stages() {
        let mut l = TrafficLedger::new();
        l.add(Stage::Projection, Direction::Read, 40);
        l.add(Stage::Sorting, Direction::Read, 50);
        l.add(Stage::Rendering, Direction::Read, 10);
        let sum: f64 = [Stage::Projection, Stage::Sorting, Stage::Rendering]
            .iter()
            .map(|s| l.stage_fraction(*s))
            .sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_is_associative_on_samples() {
        let mut a = TrafficLedger::new();
        a.add(Stage::Projection, Direction::Read, 1);
        let mut b = TrafficLedger::new();
        b.add(Stage::Projection, Direction::Read, 2);
        b.add(Stage::PixelOut, Direction::Write, 9);
        let mut c = TrafficLedger::new();
        c.add(Stage::VoxelFine, Direction::Read, 4);

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
    }

    #[test]
    fn empty_ledger_fraction_is_zero() {
        assert_eq!(TrafficLedger::new().stage_fraction(Stage::Sorting), 0.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(Stage::VoxelCoarse.to_string(), "voxel-coarse");
        assert_eq!(Stage::ALL.len(), 6);
    }
}
