//! # gs-mem — DRAM/SRAM models, traffic ledger and energy accounting
//!
//! The quantitative backbone of every simulator in the workspace:
//!
//! * [`dram::DramModel`] — an LPDDR3-class bandwidth/energy model
//!   (paper Sec. V-A: Micron 16 Gb LPDDR3, 4 channels),
//! * [`sram::SramBuffer`] — capacity-checked on-chip buffers with access
//!   energy (paper: 16 KB double-buffered input, 250 KB codebook, 89 KB
//!   intermediate),
//! * [`ledger::TrafficLedger`] — per-stage read/write byte accounting.
//!   Since PR 3 this is the **single source of byte truth** for the
//!   streaming pipeline: `gs_voxel`'s renderer owns one ledger per
//!   worker, meters every voxel-store fetch and pixel writeback through
//!   it, merges them per frame in deterministic worker order, derives the
//!   workload byte counters from the ledger stages, and `gs-accel` prices
//!   DRAM time/energy from the same measured bytes
//!   (`StreamingGsModel::evaluate_measured`). Since PR 4 the ledger keeps
//!   three counter classes per stage: *demand* bytes (the byte-exactness
//!   invariant), *DRAM transaction* bytes (burst-rounded per transfer,
//!   cache misses only — what pricing consumes) and *cache-hit* bytes
//!   (served on-chip, priced as SRAM),
//! * [`cache::WorkingSetCache`] — a deterministic set-associative LRU
//!   working-set cache model the streaming renderer fronts its
//!   coarse/fine voxel fetches with, so trajectory temporal locality
//!   turns repeat fetches into on-chip hits instead of DRAM bursts,
//! * [`energy::EnergyBreakdown`] — compute/SRAM/DRAM picojoule totals,
//! * [`crc::crc32`] — CRC-32/IEEE for scene-image integrity: the paged
//!   voxel store checksums its serialized column payloads per chunk and
//!   verifies them on page materialization (PR 6).
//!
//! ## Example
//!
//! ```
//! use gs_mem::dram::DramModel;
//! let dram = DramModel::lpddr3_x4();
//! // Four LPDDR3 channels ≈ 25.6 GB/s aggregate in this model.
//! let ns = dram.transfer_ns(25_600_000_000 / 1000);
//! assert!((ns - 1_000_000.0).abs() / 1_000_000.0 < 0.01);
//! ```

pub mod cache;
pub mod crc;
pub mod dram;
pub mod energy;
pub mod ledger;
pub mod sram;

pub use cache::{CacheConfig, CacheReport, CacheStats, WorkingSetCache};
pub use dram::DramModel;
pub use energy::EnergyBreakdown;
pub use ledger::{Direction, Stage, TrafficLedger, MAX_TIERS};
pub use sram::SramBuffer;
