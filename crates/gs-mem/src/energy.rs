//! Energy accounting: compute / SRAM / DRAM picojoule totals.

use serde::{Deserialize, Serialize};
use std::ops::Add;

/// Energy split by source, in picojoules.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Datapath energy (MACs, comparators, control).
    pub compute_pj: f64,
    /// On-chip SRAM access energy.
    pub sram_pj: f64,
    /// Off-chip DRAM energy (dynamic + static share).
    pub dram_pj: f64,
}

impl EnergyBreakdown {
    /// Creates a breakdown from components.
    pub fn new(compute_pj: f64, sram_pj: f64, dram_pj: f64) -> EnergyBreakdown {
        EnergyBreakdown {
            compute_pj,
            sram_pj,
            dram_pj,
        }
    }

    /// Total picojoules.
    pub fn total_pj(&self) -> f64 {
        self.compute_pj + self.sram_pj + self.dram_pj
    }

    /// Total millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_pj() * 1e-9
    }

    /// Fraction of the total spent in DRAM.
    pub fn dram_fraction(&self) -> f64 {
        let t = self.total_pj();
        if t <= 0.0 {
            0.0
        } else {
            self.dram_pj / t
        }
    }

    /// Scales every component by `k`.
    pub fn scaled(&self, k: f64) -> EnergyBreakdown {
        EnergyBreakdown {
            compute_pj: self.compute_pj * k,
            sram_pj: self.sram_pj * k,
            dram_pj: self.dram_pj * k,
        }
    }
}

impl Add for EnergyBreakdown {
    type Output = EnergyBreakdown;
    fn add(self, o: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            compute_pj: self.compute_pj + o.compute_pj,
            sram_pj: self.sram_pj + o.sram_pj,
            dram_pj: self.dram_pj + o.dram_pj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let e = EnergyBreakdown::new(10.0, 20.0, 70.0);
        assert!((e.total_pj() - 100.0).abs() < 1e-12);
        assert!((e.dram_fraction() - 0.7).abs() < 1e-12);
        assert!((e.total_mj() - 1e-7).abs() < 1e-20);
    }

    #[test]
    fn add_and_scale() {
        let a = EnergyBreakdown::new(1.0, 2.0, 3.0);
        let b = EnergyBreakdown::new(4.0, 5.0, 6.0);
        let s = a + b;
        assert_eq!(s, EnergyBreakdown::new(5.0, 7.0, 9.0));
        assert_eq!(s.scaled(2.0), EnergyBreakdown::new(10.0, 14.0, 18.0));
    }

    #[test]
    fn empty_fraction_is_zero() {
        assert_eq!(EnergyBreakdown::default().dram_fraction(), 0.0);
    }
}
