//! Capacity-checked on-chip SRAM buffers with access-energy accounting.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error returned when an allocation exceeds the buffer capacity.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ExceedCapacityError {
    /// Requested bytes.
    pub requested: u64,
    /// Available bytes.
    pub available: u64,
}

impl fmt::Display for ExceedCapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sram allocation of {} B exceeds available {} B",
            self.requested, self.available
        )
    }
}

impl Error for ExceedCapacityError {}

/// An on-chip buffer: fixed capacity, occupancy tracking, access energy.
///
/// The accelerator model uses these to *check* that the paper's buffer
/// budget (16 KB input, 250 KB codebook, 89 KB intermediate) actually holds
/// the data the pipeline stages during the measured workloads.
///
/// ```
/// use gs_mem::sram::SramBuffer;
/// let mut buf = SramBuffer::new("input", 16 * 1024, 0.8);
/// buf.alloc(4096).expect("fits");
/// assert_eq!(buf.free(), 12 * 1024);
/// buf.reset();
/// assert_eq!(buf.free(), 16 * 1024);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SramBuffer {
    name: String,
    capacity: u64,
    used: u64,
    /// High-water mark across the run.
    peak: u64,
    /// Access energy in picojoules per byte.
    pj_per_byte: f64,
    /// Total bytes read or written (for energy).
    accessed: u64,
}

impl SramBuffer {
    /// Creates a buffer with `capacity` bytes and the given access energy.
    pub fn new(name: &str, capacity: u64, pj_per_byte: f64) -> SramBuffer {
        SramBuffer {
            name: name.to_owned(),
            capacity,
            used: 0,
            peak: 0,
            pj_per_byte,
            accessed: 0,
        }
    }

    /// Buffer name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still available.
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }

    /// Largest occupancy observed.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Allocates `bytes`, failing when the buffer would overflow.
    ///
    /// # Errors
    ///
    /// Returns [`ExceedCapacityError`] when `bytes > free()`.
    pub fn alloc(&mut self, bytes: u64) -> Result<(), ExceedCapacityError> {
        if bytes > self.free() {
            return Err(ExceedCapacityError {
                requested: bytes,
                available: self.free(),
            });
        }
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        Ok(())
    }

    /// Releases `bytes` (saturating).
    pub fn release(&mut self, bytes: u64) {
        self.used = self.used.saturating_sub(bytes);
    }

    /// Empties the buffer (keeps the peak and energy counters).
    pub fn reset(&mut self) {
        self.used = 0;
    }

    /// Records `bytes` of read or write activity (for energy).
    pub fn touch(&mut self, bytes: u64) {
        self.accessed += bytes;
    }

    /// Total bytes accessed.
    pub fn accessed(&self) -> u64 {
        self.accessed
    }

    /// Access energy so far, picojoules.
    pub fn energy_pj(&self) -> f64 {
        self.accessed as f64 * self.pj_per_byte
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn alloc_release_lifecycle() {
        let mut b = SramBuffer::new("test", 100, 1.0);
        b.alloc(60).unwrap();
        b.alloc(40).unwrap();
        assert_eq!(b.free(), 0);
        assert!(b.alloc(1).is_err());
        b.release(50);
        assert_eq!(b.used(), 50);
        b.alloc(10).unwrap();
        assert_eq!(b.peak(), 100);
    }

    #[test]
    fn overflow_error_reports_sizes() {
        let mut b = SramBuffer::new("x", 10, 1.0);
        let e = b.alloc(11).unwrap_err();
        assert_eq!(e.requested, 11);
        assert_eq!(e.available, 10);
        assert!(e.to_string().contains("11"));
    }

    #[test]
    fn energy_accumulates_with_touch() {
        let mut b = SramBuffer::new("x", 10, 0.5);
        b.touch(100);
        b.touch(50);
        assert_eq!(b.accessed(), 150);
        assert!((b.energy_pj() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn reset_keeps_peak() {
        let mut b = SramBuffer::new("x", 100, 1.0);
        b.alloc(80).unwrap();
        b.reset();
        assert_eq!(b.used(), 0);
        assert_eq!(b.peak(), 80);
    }
}
