//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`) for scene-image
//! integrity checking.
//!
//! The paged voxel store ships scenes as serialized images whose columns are
//! demand-read from a slow tier; PR 6 extends the image format with per-chunk
//! checksums over both column payloads plus one over the metadata prefix, all
//! computed with this module (no crates.io dependency — the 256-entry table is
//! built by a `const fn` at compile time).
//!
//! Two entry points:
//!
//! * [`crc32`] — one-shot over a byte slice,
//! * [`Crc32`] — incremental (streaming) digest for writers that produce the
//!   payload in pieces; `Crc32::new().update(a).update(b).finish()` equals
//!   `crc32(a ++ b)`.

/// The reflected IEEE polynomial used by zlib, PNG, Ethernet.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i: u32 = 0;
    while i < 256 {
        let mut c = i;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i as usize] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// One-shot CRC-32/IEEE of `bytes` (`crc32(b"") == 0`).
pub fn crc32(bytes: &[u8]) -> u32 {
    Crc32::new().update(bytes).finish()
}

/// Incremental CRC-32/IEEE digest.
///
/// ```
/// use gs_mem::crc::{crc32, Crc32};
/// let whole = crc32(b"streaming gaussians");
/// let split = Crc32::new()
///     .update(b"streaming ")
///     .update(b"gaussians")
///     .finish();
/// assert_eq!(whole, split);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh digest (initial state `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Folds `bytes` into the digest; returns `self` for chaining.
    #[must_use]
    pub fn update(mut self, bytes: &[u8]) -> Crc32 {
        for &b in bytes {
            let idx = ((self.state ^ u32::from(b)) & 0xFF) as usize;
            self.state = TABLE[idx] ^ (self.state >> 8);
        }
        self
    }

    /// Final checksum value.
    pub fn finish(self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vectors() {
        // The standard CRC-32/IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1031).collect();
        for split in [0usize, 1, 7, 515, 1030, 1031] {
            let (a, b) = data.split_at(split);
            assert_eq!(
                Crc32::new().update(a).update(b).finish(),
                crc32(&data),
                "split at {split}"
            );
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data: Vec<u8> = (0..64u8).collect();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
